//! Event-driven city-scale tag simulation: thousands of harvesting tags
//! contending under the paper's full-duplex feedback primitives, with idle
//! tags costing ~zero.
//!
//! ## Why event-driven
//!
//! The sample-level simulators ([`fdb_core::link::FdLink`], the K-device
//! [`fdb_core::network::BackscatterNetwork`]) price every device at every
//! sample — 20 kHz × population, with an O(n²) hop set. A city block of
//! 10 000 tags at 60 s mean interarrival spends >99.9 % of device-time
//! asleep, harvesting. This engine inverts the cost model:
//!
//! * A binary-heap **event queue** (integer ticks = data-bit times)
//!   schedules tag wake-ups from harvest/duty state
//!   ([`fdb_mac::duty::DutyCycleController`]) and frame boundaries.
//!   Between events a tag advances analytically — charge accrual is a
//!   closed-form expression, not simulated samples.
//! * Contention runs through the paper's feedback primitives: carrier
//!   sense and collision-detect aborts at the
//!   [`fdb_mac::csma::pilot_latency_bits`] latency, with binary
//!   exponential [`fdb_mac::csma::backoff_window`] retries.
//! * Interference between concurrently-active links is scored with the
//!   [`NetworkConfig::pair_gain`] geometry kernel — the same
//!   pathloss-over-pair-distance quantity as
//!   `BackscatterNetwork::pair_coeff` — without ever instantiating the
//!   dense O(n²) network.
//! * Under [`CityFidelity::Sampled`], uncollided frames additionally run
//!   the full sample-level [`FdLink`] PHY through a bounded pool of
//!   active-link slots (each embedding the PR-9 zero-alloc
//!   `LinkScratch` arenas, rebuilt in place via `FdLink::reinit`).
//!
//! ## Determinism keying
//!
//! Every random decision of tag `t` comes from the stateless counter
//! stream rooted at `derive_seed(spec.seed, t)`: positions, arrival
//! times, backoff draws and sampled-frame RNGs are all keyed by
//! `(tag stream, salt, counter)`. No draw consumes from a shared
//! generator, so a tag's entire trajectory is byte-identical no matter
//! how many other tags — idle or active — share the city. That is the
//! scale-invariance contract `tests/city_scale.rs` pins: N active tags
//! embedded among M idle tags produce identical per-active-tag ledgers
//! for any M.
//!
//! ## Conservation
//!
//! Per tag and in aggregate, `offered == delivered + lost + pending`
//! holds at every horizon: an offered frame is eventually delivered,
//! dropped after `max_attempts`, or still pending (queued or in flight)
//! when the clock stops.

use crate::job::JobProgress;
use fdb_core::config::PhyConfig;
use fdb_core::link::{FdLink, FrameOutcome, FrameRun, LinkConfig, RunOptions};
use fdb_core::network::NetworkConfig;
use fdb_core::seed::derive_seed;
use fdb_core::PhyError;
use fdb_channel::pathloss::PathLoss;
use fdb_dsp::sample::dbm_to_watts;
use fdb_mac::csma::{backoff_window, pilot_latency_bits, AccessMode};
use fdb_mac::duty::{DutyCycleController, DutyConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::Write;

/// Salt of the per-tag position draws (`derive_seed(tag_stream, POS)`).
const POS_STREAM: u64 = 0x43_54_59_50; // "CTYP"
/// Salt of the per-tag decision-draw counter stream.
const DRAW_STREAM: u64 = 0x43_54_59_44; // "CTYD"
/// Salt of the per-tag sampled-frame RNG seeds.
const FRAME_STREAM: u64 = 0x43_54_59_46; // "CTYF"
/// Salt of the per-tag ambient seed for sampled frames.
const AMBIENT_STREAM: u64 = 0x43_54_59_41; // "CTYA"

/// How often the event loop polls cancellation / reports progress.
const CTL_EVERY_EVENTS: u64 = 4096;

/// PHY fidelity of uncollided frame attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CityFidelity {
    /// An uncollided attempt delivers; energy cost is `tx_load_w` over
    /// the frame airtime. The only mode that scales to 10k+ tags.
    Analytic,
    /// Each uncollided attempt runs a full sample-level [`FdLink`] frame
    /// on a pooled link slot; delivery and transmit energy come from the
    /// [`FrameOutcome`]. ~10⁵ samples per frame — for small scenarios.
    Sampled,
}

/// Serde spec of one city scenario. All fields have defaults, so partial
/// JSON configs parse (Deserialize is hand-written to start from
/// [`CityScenarioSpec::default`] and override only the fields present).
#[derive(Debug, Clone, Serialize)]
pub struct CityScenarioSpec {
    /// Scenario label carried into the report.
    pub label: String,
    /// Master seed; tag `t`'s private stream is `derive_seed(seed, t)`.
    pub seed: u64,
    /// Tags with traffic (ledgered). Tag ids `0..n_active`.
    pub n_active: u32,
    /// Idle tags sharing the city (ids `n_active..n_active + n_idle`).
    /// They harvest but never transmit, and by construction cost no
    /// events and perturb no streams — the scale-invariance contract.
    pub n_idle: u32,
    /// Side of the square deployment area, metres. Tag transmitters are
    /// placed uniformly in `[0, area_m)²`.
    pub area_m: f64,
    /// Distance from each tag to its dedicated receiver, metres (the
    /// receiver sits `link_dist_m` along +x).
    pub link_dist_m: f64,
    /// Simulated duration, seconds.
    pub sim_duration_s: f64,
    /// Mean of the exponential frame interarrival per active tag,
    /// seconds.
    pub mean_interarrival_s: f64,
    /// Frames queued per arrival event (>1 = bursty offered load).
    pub burst_arrivals: u32,
    /// Payload length per frame, bytes. Note the FD feedback epoch
    /// ([`pilot_latency_bits`], 196 bit-times at the default PHY) must
    /// fit inside the frame airtime for collision-detect aborts to fire;
    /// the 64-byte default gives a ~590-bit frame.
    pub payload_len: usize,
    /// Access protocol: blind ALOHA or full-duplex collision detection
    /// (carrier sense + pilot-latency aborts).
    pub mode: AccessMode,
    /// Attempts per frame before it is counted lost.
    pub max_attempts: u32,
    /// Initial binary-exponential backoff window, bit-times.
    pub backoff_min_bits: u64,
    /// Duty-cycle / energy-bank policy per tag.
    pub duty: DutyConfig,
    /// Fraction of incident RF power banked by the harvester.
    pub harvest_efficiency: f64,
    /// Electrical load while transmitting a frame, watts (analytic
    /// energy model; `Sampled` uses the measured `FrameOutcome` energy).
    pub tx_load_w: f64,
    /// PHY fidelity of uncollided attempts.
    pub fidelity: CityFidelity,
    /// Bound on concurrently-active links (transmissions in flight).
    /// Starts beyond the bound defer and retry, modelling a reader
    /// population that can track only so many tags at once.
    pub pool: usize,
    /// A concurrent transmitter whose interference amplitude at a
    /// victim's receiver is within this margin (dB) of the victim's own
    /// signal collides with it.
    pub collision_margin_db: f64,
    /// Record one [`FrameRecord`] per finished attempt (golden vectors /
    /// debugging; off for big runs).
    pub log_frames: bool,
    /// Nominal ambient-source distance, metres (per-tag distance adds
    /// the tag's y coordinate, as in [`NetworkConfig`]).
    pub source_dist_m: f64,
    /// Ambient source transmit power, dBm.
    pub source_power_dbm: f64,
    /// Path loss to the ambient source.
    pub pathloss_source: PathLoss,
    /// Path loss between devices (the interference kernel).
    pub pathloss_device: PathLoss,
    /// Shared PHY parameters (frame airtime, pilot latency, data rate).
    pub phy: PhyConfig,
}

impl Default for CityScenarioSpec {
    fn default() -> Self {
        CityScenarioSpec {
            label: "city".into(),
            seed: 1,
            n_active: 64,
            n_idle: 0,
            area_m: 200.0,
            link_dist_m: 0.4,
            sim_duration_s: 600.0,
            mean_interarrival_s: 60.0,
            burst_arrivals: 1,
            payload_len: 64,
            mode: AccessMode::FdCollisionDetect,
            max_attempts: 8,
            backoff_min_bits: 512,
            duty: DutyConfig::default(),
            harvest_efficiency: 0.3,
            tx_load_w: 10e-6,
            fidelity: CityFidelity::Analytic,
            pool: 64,
            collision_margin_db: 10.0,
            log_frames: false,
            source_dist_m: 1000.0,
            source_power_dbm: 60.0,
            pathloss_source: PathLoss::tv_band(),
            pathloss_device: PathLoss::FreeSpace { freq_hz: 539e6 },
            phy: PhyConfig::default_fd(),
        }
    }
}

impl Deserialize for CityScenarioSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::expected("object", v))?;
        let mut s = CityScenarioSpec::default();
        for (k, val) in obj {
            match k.as_str() {
                "label" => s.label = Deserialize::from_value(val)?,
                "seed" => s.seed = Deserialize::from_value(val)?,
                "n_active" => s.n_active = Deserialize::from_value(val)?,
                "n_idle" => s.n_idle = Deserialize::from_value(val)?,
                "area_m" => s.area_m = Deserialize::from_value(val)?,
                "link_dist_m" => s.link_dist_m = Deserialize::from_value(val)?,
                "sim_duration_s" => s.sim_duration_s = Deserialize::from_value(val)?,
                "mean_interarrival_s" => {
                    s.mean_interarrival_s = Deserialize::from_value(val)?
                }
                "burst_arrivals" => s.burst_arrivals = Deserialize::from_value(val)?,
                "payload_len" => s.payload_len = Deserialize::from_value(val)?,
                "mode" => s.mode = Deserialize::from_value(val)?,
                "max_attempts" => s.max_attempts = Deserialize::from_value(val)?,
                "backoff_min_bits" => s.backoff_min_bits = Deserialize::from_value(val)?,
                "duty" => s.duty = Deserialize::from_value(val)?,
                "harvest_efficiency" => {
                    s.harvest_efficiency = Deserialize::from_value(val)?
                }
                "tx_load_w" => s.tx_load_w = Deserialize::from_value(val)?,
                "fidelity" => s.fidelity = Deserialize::from_value(val)?,
                "pool" => s.pool = Deserialize::from_value(val)?,
                "collision_margin_db" => {
                    s.collision_margin_db = Deserialize::from_value(val)?
                }
                "log_frames" => s.log_frames = Deserialize::from_value(val)?,
                "source_dist_m" => s.source_dist_m = Deserialize::from_value(val)?,
                "source_power_dbm" => s.source_power_dbm = Deserialize::from_value(val)?,
                "pathloss_source" => s.pathloss_source = Deserialize::from_value(val)?,
                "pathloss_device" => s.pathloss_device = Deserialize::from_value(val)?,
                "phy" => s.phy = Deserialize::from_value(val)?,
                _ => {
                    return Err(serde::DeError::custom(format!(
                        "CityScenarioSpec: unknown field `{k}`"
                    )))
                }
            }
        }
        Ok(s)
    }
}

impl CityScenarioSpec {
    /// Simulation ticks per second: one tick per data bit.
    pub fn ticks_per_s(&self) -> f64 {
        self.phy.data_rate_bps()
    }

    /// Frame airtime in ticks (preamble + framed payload).
    pub fn frame_ticks(&self) -> u64 {
        (fdb_mac::scenario::nominal_frame_samples(&self.phy, self.payload_len)
            / self.phy.samples_per_bit() as u64)
            .max(1)
    }

    /// Simulation horizon in ticks.
    pub fn horizon_ticks(&self) -> u64 {
        (self.sim_duration_s * self.ticks_per_s()).ceil() as u64
    }

    /// Structural validation; run before simulating (and by the job
    /// service at submit time).
    pub fn validate(&self) -> Result<(), PhyError> {
        self.phy.validate()?;
        let bad = |field: &'static str, reason: String| {
            Err(PhyError::InvalidConfig { field, reason })
        };
        if !(self.sim_duration_s.is_finite() && self.sim_duration_s > 0.0) {
            return bad("sim_duration_s", format!("{} not in (0, ∞)", self.sim_duration_s));
        }
        if self.horizon_ticks() > 1 << 40 {
            return bad("sim_duration_s", "horizon exceeds 2^40 ticks".into());
        }
        if !(self.mean_interarrival_s.is_finite() && self.mean_interarrival_s > 0.0) {
            return bad(
                "mean_interarrival_s",
                format!("{} not in (0, ∞)", self.mean_interarrival_s),
            );
        }
        if self.payload_len == 0 || self.payload_len > 4096 {
            return bad("payload_len", format!("{} not in 1..=4096", self.payload_len));
        }
        if self.pool == 0 {
            return bad("pool", "active-link pool must hold ≥ 1 slot".into());
        }
        if self.max_attempts == 0 {
            return bad("max_attempts", "must be ≥ 1".into());
        }
        if self.burst_arrivals == 0 {
            return bad("burst_arrivals", "must be ≥ 1".into());
        }
        if !(self.area_m.is_finite() && self.area_m >= 0.0) {
            return bad("area_m", format!("{} not in [0, ∞)", self.area_m));
        }
        if !(self.link_dist_m.is_finite() && self.link_dist_m > 0.0) {
            return bad("link_dist_m", format!("{} not in (0, ∞)", self.link_dist_m));
        }
        if !(0.0..=1.0).contains(&self.harvest_efficiency) {
            return bad(
                "harvest_efficiency",
                format!("{} not in [0, 1]", self.harvest_efficiency),
            );
        }
        if !(self.tx_load_w.is_finite() && self.tx_load_w >= 0.0) {
            return bad("tx_load_w", format!("{} not in [0, ∞)", self.tx_load_w));
        }
        if !self.collision_margin_db.is_finite() {
            return bad("collision_margin_db", "must be finite".into());
        }
        Ok(())
    }

    /// The interference/harvest geometry kernel shared with
    /// [`fdb_core::network::BackscatterNetwork`]: a [`NetworkConfig`]
    /// carrying this spec's source and pathloss models (its
    /// positions/tags are unused — only the gain methods are called).
    fn gain_config(&self) -> NetworkConfig {
        let mut cfg = NetworkConfig::ring(1, 1.0, fdb_device::TagConfig::typical(1e-4));
        cfg.source_dist_m = self.source_dist_m;
        cfg.source_power_dbm = self.source_power_dbm;
        cfg.pathloss_source = self.pathloss_source;
        cfg.pathloss_device = self.pathloss_device;
        cfg
    }
}

/// Per-active-tag outcome ledger. Plain counters — byte-comparable for
/// the scale-invariance suite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TagLedger {
    /// Tag id.
    pub tag: u32,
    /// Frames offered (arrivals × burst size).
    pub offered: u64,
    /// Frames fully delivered.
    pub delivered: u64,
    /// Frames dropped after `max_attempts`.
    pub lost: u64,
    /// Frames still queued or in flight at the horizon.
    pub pending: u64,
    /// Transmission attempts started.
    pub attempts: u64,
    /// Attempts that ended collided.
    pub collisions: u64,
    /// Collided attempts cut short by FD collision detection.
    pub aborts: u64,
    /// Starts deferred by carrier sense or a full link pool.
    pub deferrals: u64,
    /// Uncollided attempts that failed at the sampled PHY layer.
    pub phy_failures: u64,
    /// Delivered payload bits.
    pub goodput_bits: u64,
    /// Energy harvested over the run, joules.
    pub harvested_j: f64,
    /// Energy spent (sleep load + transmit cost), joules.
    pub spent_j: f64,
    /// Transfers fired with an insufficient bank.
    pub browned_out: u64,
    /// Whether harvest income cannot even cover the sleep load — the tag
    /// never transmits at this range.
    pub dead: bool,
}

/// City-wide totals (sum of the active-tag ledgers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CityTotals {
    /// Frames offered.
    pub offered: u64,
    /// Frames delivered.
    pub delivered: u64,
    /// Frames dropped.
    pub lost: u64,
    /// Frames pending at the horizon.
    pub pending: u64,
    /// Attempts started.
    pub attempts: u64,
    /// Collided attempts.
    pub collisions: u64,
    /// FD-aborted collisions.
    pub aborts: u64,
    /// Deferred starts.
    pub deferrals: u64,
    /// Sampled-PHY failures.
    pub phy_failures: u64,
    /// Delivered payload bits.
    pub goodput_bits: u64,
    /// Energy harvested, joules.
    pub harvested_j: f64,
    /// Energy spent, joules.
    pub spent_j: f64,
    /// Brown-outs.
    pub browned_out: u64,
    /// Tags dead at this range.
    pub dead_tags: u64,
}

impl CityTotals {
    /// The conservation invariant every run must satisfy.
    pub fn conserved(&self) -> bool {
        self.offered == self.delivered + self.lost + self.pending
    }
}

/// How one finished transmission attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttemptOutcome {
    /// Delivered (analytically, or verified by the sampled PHY).
    Delivered,
    /// Collided and rode out the whole frame (ALOHA).
    Collided,
    /// Collided and was cut short by FD collision detection.
    Aborted,
    /// Uncollided but the sampled PHY failed to deliver.
    PhyFailed,
}

/// One finished attempt (recorded when `log_frames` is set).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameRecord {
    /// Tick at which the attempt ended.
    pub tick: u64,
    /// Transmitting tag.
    pub tag: u32,
    /// How it ended.
    pub outcome: AttemptOutcome,
    /// Whether this failure exhausted the frame's attempts (frame lost).
    pub dropped: bool,
}

/// Full result of one city run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CityReport {
    /// Scenario label.
    pub label: String,
    /// Master seed.
    pub seed: u64,
    /// Active / idle populations.
    pub n_active: u32,
    /// Idle population (never transmits; must not affect anything else).
    pub n_idle: u32,
    /// Simulated horizon, ticks.
    pub horizon_ticks: u64,
    /// Ticks per second (the PHY data rate).
    pub ticks_per_s: f64,
    /// Events processed by the scheduler (deterministic per spec).
    pub events_processed: u64,
    /// High-water mark of the event queue.
    pub peak_queue: u64,
    /// Sum of the ledgers.
    pub totals: CityTotals,
    /// Per-active-tag ledgers, in tag-id order (`ledgers[t].tag == t`).
    pub ledgers: Vec<TagLedger>,
    /// Finished attempts in completion order (only when `log_frames`).
    pub frames: Vec<FrameRecord>,
}

impl CityReport {
    /// Writes the report as JSONL: one line per active-tag ledger, then
    /// one `{"summary":true,...}` line with the totals — the `probe
    /// city` reporter format.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let err = |e: serde_json::Error| std::io::Error::other(e.to_string());
        for ledger in &self.ledgers {
            writeln!(w, "{}", serde_json::to_string(ledger).map_err(err)?)?;
        }
        #[derive(Serialize)]
        struct Summary {
            summary: bool,
            label: String,
            seed: u64,
            n_active: u32,
            n_idle: u32,
            horizon_ticks: u64,
            events_processed: u64,
            peak_queue: u64,
            conserved: bool,
            totals: CityTotals,
        }
        let line = serde_json::to_string(&Summary {
            summary: true,
            label: self.label.clone(),
            seed: self.seed,
            n_active: self.n_active,
            n_idle: self.n_idle,
            horizon_ticks: self.horizon_ticks,
            events_processed: self.events_processed,
            peak_queue: self.peak_queue,
            conserved: self.totals.conserved(),
            totals: self.totals,
        })
        .map_err(err)?;
        writeln!(w, "{line}")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// New frame(s) offered at this tag.
    Arrival,
    /// The tag re-evaluates whether it can start transmitting (energy
    /// threshold reached, backoff expired, deferral retry).
    Wake,
    /// FD collision detection fires `pilot_latency` after collision
    /// onset (valid only if the tag's epoch still matches).
    Abort,
    /// Scheduled end of a transmission (epoch-guarded).
    TxEnd,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    tick: u64,
    /// Push-order tiebreak: equal-tick events process in push order, so
    /// the schedule is deterministic and extension-stable.
    seq: u64,
    tag: u32,
    epoch: u32,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.tick, self.seq).cmp(&(other.tick, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-tag live state (engine-internal).
#[derive(Debug, Clone, Copy)]
struct TagState {
    pos: (f64, f64),
    rx: (f64, f64),
    income_w: f64,
    /// Interference amplitude at this tag's receiver above which a
    /// concurrent transmitter collides with it: own link amplitude ×
    /// 10^(−margin/20).
    collision_amp: f64,
    duty: DutyCycleController,
    stream: u64,
    draw_stream: u64,
    draws: u64,
    frames_sampled: u64,
    pending: u64,
    attempts: u32,
    /// Consecutive carrier-sense/pool deferrals since the last start;
    /// drives the deferral backoff window so a saturated pool degrades
    /// to exponentially-spaced retries instead of thrashing the queue.
    defer_streak: u32,
    epoch: u32,
    transmitting: bool,
    waiting: bool,
    tx_start: u64,
    tx_end: u64,
    collided: bool,
    abort_scheduled: bool,
    slot: u32,
    dead: bool,
    ledger: TagLedger,
}

/// Mantissa-uniform `[0, 1)` from one `derive_seed` output.
fn u01(v: u64) -> f64 {
    (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The reusable event-driven engine. Construct once; [`run_into`] reuses
/// every internal buffer (event heap, tag table, link slots, report
/// vectors), so repeated runs of same-shaped specs allocate nothing in
/// the event loop — the property the alloc gate pins.
///
/// [`run_into`]: CityEngine::run_into
#[derive(Default)]
pub struct CityEngine {
    heap: BinaryHeap<Reverse<Event>>,
    tags: Vec<TagState>,
    /// Tags currently transmitting (indices into `tags`).
    active: Vec<u32>,
    /// Sampled-fidelity link slots, lazily built (None in analytic runs).
    slots: Vec<Option<FdLink>>,
    free_slots: Vec<u32>,
    payload: Vec<u8>,
    outcome: FrameOutcome,
    link_cfg: Option<LinkConfig>,
    /// Cached geometry kernel ([`CityScenarioSpec::gain_config`]) so
    /// repeated runs don't rebuild its internal vectors.
    gain_cfg: Option<NetworkConfig>,
    seq: u64,
}

impl CityEngine {
    /// A fresh engine with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `spec` to its horizon, allocating a fresh report.
    pub fn run(spec: &CityScenarioSpec) -> Result<CityReport, PhyError> {
        let mut engine = CityEngine::new();
        let mut report = CityReport::default();
        engine.run_into(spec, &mut report)?;
        Ok(report)
    }

    /// Runs `spec` into a reused report (buffers retained across runs).
    pub fn run_into(
        &mut self,
        spec: &CityScenarioSpec,
        report: &mut CityReport,
    ) -> Result<(), PhyError> {
        self.run_ctl(spec, report, None, &mut |_| {})
    }

    /// [`run_into`](CityEngine::run_into) with a cooperative control
    /// surface: `cancel` is polled every [`CTL_EVERY_EVENTS`] events
    /// (returning `true` stops the run with [`PhyError::Cancelled`],
    /// `frames_done` = events processed), and `progress` receives
    /// simulated-time progress on the same cadence (`done` ∈ `0..=100`).
    pub fn run_ctl(
        &mut self,
        spec: &CityScenarioSpec,
        report: &mut CityReport,
        cancel: Option<&dyn Fn() -> bool>,
        progress: &mut dyn FnMut(JobProgress),
    ) -> Result<(), PhyError> {
        spec.validate()?;
        let horizon = spec.horizon_ticks();
        let ticks_per_s = spec.ticks_per_s();
        let frame_ticks = spec.frame_ticks();
        let pilot_latency = pilot_latency_bits(&spec.phy);
        // Take the cached kernel out of `self` (it is re-stowed below) so
        // it can be borrowed alongside `&mut self` in the event handlers.
        let mut gain_cfg = self
            .gain_cfg
            .take()
            .unwrap_or_else(|| spec.gain_config());
        gain_cfg.source_dist_m = spec.source_dist_m;
        gain_cfg.source_power_dbm = spec.source_power_dbm;
        gain_cfg.pathloss_source = spec.pathloss_source;
        gain_cfg.pathloss_device = spec.pathloss_device;
        let source_w = dbm_to_watts(spec.source_power_dbm);
        let margin_amp = 10f64.powf(-spec.collision_margin_db / 20.0);
        let payload_bits = (spec.payload_len * 8) as u64;

        // Reset reusable state.
        self.heap.clear();
        self.tags.clear();
        self.active.clear();
        self.free_slots.clear();
        self.slots.resize_with(spec.pool, || None);
        self.slots.truncate(spec.pool);
        for s in (0..spec.pool as u32).rev() {
            self.free_slots.push(s);
        }
        self.seq = 0;
        self.payload.clear();
        self.payload.resize(spec.payload_len, 0xA5);

        report.label.clear();
        report.label.push_str(&spec.label);
        report.seed = spec.seed;
        report.n_active = spec.n_active;
        report.n_idle = spec.n_idle;
        report.horizon_ticks = horizon;
        report.ticks_per_s = ticks_per_s;
        report.events_processed = 0;
        report.peak_queue = 0;
        report.totals = CityTotals::default();
        report.ledgers.clear();
        report.frames.clear();

        // Materialise only the active tags. Idle tags are pure config:
        // they never transmit, so they generate no events and no state —
        // the engine's cost and every stream are independent of `n_idle`.
        self.tags.reserve(spec.n_active as usize);
        for t in 0..spec.n_active {
            let stream = derive_seed(spec.seed, t as u64);
            let pos_stream = derive_seed(stream, POS_STREAM);
            let pos = (
                u01(derive_seed(pos_stream, 0)) * spec.area_m,
                u01(derive_seed(pos_stream, 1)) * spec.area_m,
            );
            let rx = (pos.0 + spec.link_dist_m, pos.1);
            let income_w =
                source_w * gain_cfg.source_gain(pos).powi(2) * spec.harvest_efficiency;
            let own_amp = gain_cfg.pair_gain(pos, rx);
            let dead = income_w <= spec.duty.sleep_load_w;
            let ledger = TagLedger {
                tag: t,
                dead,
                ..TagLedger::default()
            };
            let mut state = TagState {
                pos,
                rx,
                income_w,
                collision_amp: own_amp * margin_amp,
                duty: DutyCycleController::new(spec.duty),
                stream,
                draw_stream: derive_seed(stream, DRAW_STREAM),
                draws: 0,
                frames_sampled: 0,
                pending: 0,
                attempts: 0,
                defer_streak: 0,
                epoch: 0,
                transmitting: false,
                waiting: false,
                tx_start: 0,
                tx_end: 0,
                collided: false,
                abort_scheduled: false,
                slot: u32::MAX,
                dead,
                ledger,
            };
            if !dead {
                // First arrival; the chain continues inside the loop.
                let dt = interarrival_ticks(&mut state, spec.mean_interarrival_s, ticks_per_s);
                push_event(
                    &mut self.heap,
                    &mut self.seq,
                    Event {
                        tick: dt,
                        seq: 0,
                        tag: t,
                        epoch: 0,
                        kind: EventKind::Arrival,
                    },
                );
            }
            self.tags.push(state);
        }

        // Event loop. Events past the horizon stay queued (and are
        // discarded with the heap on the next run): popping stops at the
        // first out-of-horizon event, so extending the horizon replays
        // the exact same prefix — extension stability.
        let mut last_tick = 0u64;
        let mut events: u64 = 0;
        loop {
            report.peak_queue = report.peak_queue.max(self.heap.len() as u64);
            let Some(&Reverse(ev)) = self.heap.peek() else {
                break;
            };
            if ev.tick > horizon {
                break;
            }
            self.heap.pop();
            debug_assert!(ev.tick >= last_tick, "event queue went back in time");
            last_tick = ev.tick;
            events += 1;
            if events.is_multiple_of(CTL_EVERY_EVENTS) {
                if let Some(c) = cancel {
                    if c() {
                        self.gain_cfg = Some(gain_cfg);
                        return Err(PhyError::Cancelled {
                            frames_done: events,
                        });
                    }
                }
                progress(JobProgress {
                    done: (ev.tick * 100 / horizon.max(1)).min(100),
                    total: 100,
                });
            }
            match ev.kind {
                EventKind::Arrival => {
                    let t = &mut self.tags[ev.tag as usize];
                    t.ledger.offered += spec.burst_arrivals as u64;
                    t.pending += spec.burst_arrivals as u64;
                    let dt =
                        interarrival_ticks(t, spec.mean_interarrival_s, ticks_per_s);
                    let next = ev.tick + dt;
                    push_event(
                        &mut self.heap,
                        &mut self.seq,
                        Event {
                            tick: next,
                            seq: 0,
                            tag: ev.tag,
                            epoch: 0,
                            kind: EventKind::Arrival,
                        },
                    );
                    if !t.transmitting && !t.waiting {
                        self.try_start(spec, ev.tick, ev.tag, frame_ticks, pilot_latency, &gain_cfg, ticks_per_s);
                    }
                }
                EventKind::Wake => {
                    let t = &mut self.tags[ev.tag as usize];
                    t.waiting = false;
                    if !t.transmitting && !t.dead && t.pending > 0 {
                        self.try_start(spec, ev.tick, ev.tag, frame_ticks, pilot_latency, &gain_cfg, ticks_per_s);
                    }
                }
                EventKind::Abort => {
                    let t = &self.tags[ev.tag as usize];
                    if t.transmitting && t.epoch == ev.epoch {
                        debug_assert!(t.collided);
                        self.finish_attempt(spec, ev.tick, ev.tag, true, payload_bits, ticks_per_s, frame_ticks, pilot_latency, &gain_cfg, report)?;
                    }
                }
                EventKind::TxEnd => {
                    let t = &self.tags[ev.tag as usize];
                    if t.transmitting && t.epoch == ev.epoch {
                        self.finish_attempt(spec, ev.tick, ev.tag, false, payload_bits, ticks_per_s, frame_ticks, pilot_latency, &gain_cfg, report)?;
                    }
                }
            }
        }
        report.events_processed = events;

        // Ledgers and totals (in-flight frames at the horizon stay
        // pending — conservation counts them).
        report.ledgers.extend(self.tags.iter().map(|t| {
            let mut l = t.ledger;
            l.pending = t.pending;
            l.harvested_j = t.duty.harvested_j();
            l.spent_j = t.duty.spent_j();
            l.browned_out = t.duty.counts().1;
            l
        }));
        let tot = &mut report.totals;
        for l in &report.ledgers {
            tot.offered += l.offered;
            tot.delivered += l.delivered;
            tot.lost += l.lost;
            tot.pending += l.pending;
            tot.attempts += l.attempts;
            tot.collisions += l.collisions;
            tot.aborts += l.aborts;
            tot.deferrals += l.deferrals;
            tot.phy_failures += l.phy_failures;
            tot.goodput_bits += l.goodput_bits;
            tot.harvested_j += l.harvested_j;
            tot.spent_j += l.spent_j;
            tot.browned_out += l.browned_out;
            tot.dead_tags += l.dead as u64;
        }
        debug_assert!(report.totals.conserved(), "conservation violated");
        self.gain_cfg = Some(gain_cfg);
        progress(JobProgress {
            done: 100,
            total: 100,
        });
        Ok(())
    }

    /// Attempts to start a transmission at `now` for `tag` (known to be
    /// neither transmitting nor waiting, with pending traffic). Either a
    /// transmission starts (Abort/TxEnd scheduled) or exactly one Wake
    /// is scheduled (energy sleep, carrier-sense deferral, pool-full
    /// deferral, all via the tag's own draw stream).
    #[allow(clippy::too_many_arguments)]
    fn try_start(
        &mut self,
        spec: &CityScenarioSpec,
        now: u64,
        tag: u32,
        frame_ticks: u64,
        pilot_latency: u64,
        gain_cfg: &NetworkConfig,
        ticks_per_s: f64,
    ) {
        let ti = tag as usize;
        debug_assert!(!self.tags[ti].transmitting && !self.tags[ti].waiting);
        debug_assert!(self.tags[ti].pending > 0);

        // Energy gate: charge analytically to the wake threshold.
        let income = self.tags[ti].income_w;
        match self.tags[ti].duty.sleep_until_ready(income) {
            None => {
                self.tags[ti].dead = true;
                self.tags[ti].ledger.dead = true;
                return;
            }
            Some(sleep_s) if sleep_s > 0.0 => {
                let dt = ((sleep_s * ticks_per_s).ceil() as u64).max(1);
                let epoch = self.tags[ti].epoch;
                self.tags[ti].waiting = true;
                push_event(
                    &mut self.heap,
                    &mut self.seq,
                    Event {
                        tick: now + dt,
                        seq: 0,
                        tag,
                        epoch,
                        kind: EventKind::Wake,
                    },
                );
                return;
            }
            _ => {}
        }

        // Carrier sense (the full-duplex feedback primitive) and the
        // active-link pool bound: either defers with a backoff retry.
        let my = self.tags[ti];
        let mut deferred = self.active.len() >= spec.pool;
        if !deferred && spec.mode == AccessMode::FdCollisionDetect {
            for &o in &self.active {
                let ot = &self.tags[o as usize];
                if gain_cfg.pair_gain(ot.pos, my.rx) >= my.collision_amp {
                    deferred = true;
                    break;
                }
            }
        }
        if deferred {
            let t = &mut self.tags[ti];
            t.ledger.deferrals += 1;
            let window = backoff_window(spec.backoff_min_bits, t.defer_streak);
            t.defer_streak = t.defer_streak.saturating_add(1);
            let wait = 1 + draw(t) % window;
            t.duty.bank(income, wait as f64 / ticks_per_s);
            t.waiting = true;
            let epoch = t.epoch;
            push_event(
                &mut self.heap,
                &mut self.seq,
                Event {
                    tick: now + wait,
                    seq: 0,
                    tag,
                    epoch,
                    kind: EventKind::Wake,
                },
            );
            return;
        }

        // Start. Mark collisions in both directions against every link
        // already in flight, using the pair_coeff geometry kernel.
        let end = now + frame_ticks;
        let mut collided = false;
        for k in 0..self.active.len() {
            let o = self.active[k] as usize;
            let (o_pos, o_rx, o_amp) =
                (self.tags[o].pos, self.tags[o].rx, self.tags[o].collision_amp);
            if gain_cfg.pair_gain(o_pos, my.rx) >= my.collision_amp {
                collided = true;
            }
            if gain_cfg.pair_gain(my.pos, o_rx) >= o_amp {
                let ot = &mut self.tags[o];
                ot.collided = true;
                if spec.mode == AccessMode::FdCollisionDetect && !ot.abort_scheduled {
                    let abort_tick = now + pilot_latency;
                    if abort_tick < ot.tx_end {
                        ot.abort_scheduled = true;
                        let epoch = ot.epoch;
                        push_event(
                            &mut self.heap,
                            &mut self.seq,
                            Event {
                                tick: abort_tick,
                                seq: 0,
                                tag: o as u32,
                                epoch,
                                kind: EventKind::Abort,
                            },
                        );
                    }
                }
            }
        }
        let slot = self.free_slots.pop().unwrap_or(u32::MAX);
        let t = &mut self.tags[ti];
        t.transmitting = true;
        t.tx_start = now;
        t.tx_end = end;
        t.collided = collided;
        t.abort_scheduled = false;
        t.slot = slot;
        t.attempts += 1;
        t.defer_streak = 0;
        t.ledger.attempts += 1;
        let epoch = t.epoch;
        if collided && spec.mode == AccessMode::FdCollisionDetect {
            let abort_tick = now + pilot_latency;
            if abort_tick < end {
                t.abort_scheduled = true;
                push_event(
                    &mut self.heap,
                    &mut self.seq,
                    Event {
                        tick: abort_tick,
                        seq: 0,
                        tag,
                        epoch,
                        kind: EventKind::Abort,
                    },
                );
            }
        }
        push_event(
            &mut self.heap,
            &mut self.seq,
            Event {
                tick: end,
                seq: 0,
                tag,
                epoch,
                kind: EventKind::TxEnd,
            },
        );
        self.active.push(tag);
    }

    /// Finishes the in-flight attempt of `tag` at `now` (an Abort or
    /// TxEnd whose epoch matched): releases the link slot, charges the
    /// duty controller, settles the ledger, and — if traffic remains —
    /// immediately re-attempts or schedules the backoff Wake.
    #[allow(clippy::too_many_arguments)]
    fn finish_attempt(
        &mut self,
        spec: &CityScenarioSpec,
        now: u64,
        tag: u32,
        aborted: bool,
        payload_bits: u64,
        ticks_per_s: f64,
        frame_ticks: u64,
        pilot_latency: u64,
        gain_cfg: &NetworkConfig,
        report: &mut CityReport,
    ) -> Result<(), PhyError> {
        let ti = tag as usize;
        let (tx_start, collided, slot) = {
            let t = &mut self.tags[ti];
            t.transmitting = false;
            t.epoch = t.epoch.wrapping_add(1);
            (t.tx_start, t.collided, t.slot)
        };
        if let Some(k) = self.active.iter().position(|&a| a == tag) {
            self.active.swap_remove(k);
        }
        let dur_s = (now - tx_start) as f64 / ticks_per_s;
        let income = self.tags[ti].income_w;

        let (outcome, cost_j) = if collided {
            (
                if aborted {
                    AttemptOutcome::Aborted
                } else {
                    AttemptOutcome::Collided
                },
                spec.tx_load_w * dur_s,
            )
        } else {
            match spec.fidelity {
                CityFidelity::Analytic => {
                    (AttemptOutcome::Delivered, spec.tx_load_w * dur_s)
                }
                CityFidelity::Sampled => {
                    let energy = self.run_sampled_frame(spec, tag)?;
                    let ok = self.outcome.fully_delivered();
                    (
                        if ok {
                            AttemptOutcome::Delivered
                        } else {
                            AttemptOutcome::PhyFailed
                        },
                        energy,
                    )
                }
            }
        };
        if slot != u32::MAX {
            self.free_slots.push(slot);
        }

        let t = &mut self.tags[ti];
        t.duty.fire(cost_j, dur_s, income);
        let mut dropped = false;
        match outcome {
            AttemptOutcome::Delivered => {
                t.ledger.delivered += 1;
                t.ledger.goodput_bits += payload_bits;
                t.pending -= 1;
                t.attempts = 0;
            }
            failure => {
                if failure == AttemptOutcome::PhyFailed {
                    t.ledger.phy_failures += 1;
                } else {
                    t.ledger.collisions += 1;
                    if failure == AttemptOutcome::Aborted {
                        t.ledger.aborts += 1;
                    }
                }
                if t.attempts >= spec.max_attempts {
                    t.ledger.lost += 1;
                    t.pending -= 1;
                    t.attempts = 0;
                    dropped = true;
                } else {
                    let window = backoff_window(spec.backoff_min_bits, t.attempts);
                    let wait = 1 + draw(t) % window;
                    t.duty.bank(income, wait as f64 / ticks_per_s);
                    t.waiting = true;
                    let epoch = t.epoch;
                    push_event(
                        &mut self.heap,
                        &mut self.seq,
                        Event {
                            tick: now + wait,
                            seq: 0,
                            tag,
                            epoch,
                            kind: EventKind::Wake,
                        },
                    );
                }
            }
        }
        if spec.log_frames {
            report.frames.push(FrameRecord {
                tick: now,
                tag,
                outcome,
                dropped,
            });
        }
        let t = &self.tags[ti];
        if !t.waiting && !t.dead && t.pending > 0 {
            self.try_start(spec, now, tag, frame_ticks, pilot_latency, gain_cfg, ticks_per_s);
        }
        Ok(())
    }

    /// Runs one sample-level frame for `tag` on its pooled [`FdLink`]
    /// slot and returns the transmitter's measured energy cost. The
    /// frame RNG is keyed `(tag stream, FRAME, frame counter)`, so the
    /// sampled PHY is exactly as population-independent as the rest of
    /// the engine.
    fn run_sampled_frame(
        &mut self,
        spec: &CityScenarioSpec,
        tag: u32,
    ) -> Result<f64, PhyError> {
        let ti = tag as usize;
        let (pos, rx_pos, stream, n) = {
            let t = &self.tags[ti];
            (t.pos, t.rx, t.stream, t.frames_sampled)
        };
        self.tags[ti].frames_sampled += 1;
        let cfg = self.link_cfg.get_or_insert_with(LinkConfig::default_fd);
        cfg.phy = spec.phy.clone();
        cfg.geometry.source_power_dbm = spec.source_power_dbm;
        cfg.geometry.source_dist_a_m = (spec.source_dist_m + pos.1).max(1.0);
        cfg.geometry.source_dist_b_m = (spec.source_dist_m + rx_pos.1).max(1.0);
        cfg.geometry.device_dist_m = spec.link_dist_m;
        cfg.geometry.pathloss_source = spec.pathloss_source;
        cfg.geometry.pathloss_device = spec.pathloss_device;
        cfg.ambient_seed = derive_seed(stream, AMBIENT_STREAM);
        let mut rng =
            ChaCha8Rng::seed_from_u64(derive_seed(derive_seed(stream, FRAME_STREAM), n));
        let slot = self.tags[ti].slot;
        debug_assert!(slot != u32::MAX, "transmitting tag without a slot");
        let slot = &mut self.slots[slot as usize];
        let link = match slot {
            Some(l) => {
                l.reinit(cfg, &mut rng)?;
                l
            }
            None => slot.insert(FdLink::new(cfg.clone(), &mut rng)?),
        };
        link.run_frame_into(
            &self.payload,
            &RunOptions::fd_monitor(),
            &mut rng,
            FrameRun::clean(),
            &mut self.outcome,
        )?;
        Ok(self.outcome.energy.a_consumed_j)
    }
}

/// Pushes an event, stamping the global push-order sequence number.
fn push_event(heap: &mut BinaryHeap<Reverse<Event>>, seq: &mut u64, mut ev: Event) {
    ev.seq = *seq;
    *seq += 1;
    heap.push(Reverse(ev));
}

/// Next draw from the tag's stateless counter stream.
fn draw(t: &mut TagState) -> u64 {
    let v = derive_seed(t.draw_stream, t.draws);
    t.draws += 1;
    v
}

/// Exponential interarrival in ticks (≥ 1) from the tag's own stream.
fn interarrival_ticks(t: &mut TagState, mean_s: f64, ticks_per_s: f64) -> u64 {
    let u = u01(draw(t));
    let dt_s = -(1.0 - u).ln() * mean_s;
    ((dt_s * ticks_per_s).ceil() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CityScenarioSpec {
        CityScenarioSpec {
            label: "unit".into(),
            seed: 7,
            n_active: 8,
            area_m: 4.0,
            sim_duration_s: 120.0,
            mean_interarrival_s: 10.0,
            log_frames: true,
            // An analytic frame costs ~2 µJ (10 µW × ~0.2 s); start the
            // duty estimate near it so the first charge takes seconds,
            // not minutes, at the ~0.6 µW default harvest income.
            duty: DutyConfig {
                initial_cost_estimate_j: 5e-6,
                ..DutyConfig::default()
            },
            ..CityScenarioSpec::default()
        }
    }

    #[test]
    fn run_is_deterministic() {
        let spec = small_spec();
        let a = CityEngine::run(&spec).unwrap();
        let b = CityEngine::run(&spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn reused_engine_matches_fresh() {
        let spec = small_spec();
        let fresh = CityEngine::run(&spec).unwrap();
        let mut engine = CityEngine::new();
        let mut report = CityReport::default();
        engine.run_into(&spec, &mut report).unwrap();
        assert_eq!(report, fresh);
        engine.run_into(&spec, &mut report).unwrap();
        assert_eq!(report, fresh);
    }

    #[test]
    fn conservation_holds_and_traffic_flows() {
        let report = CityEngine::run(&small_spec()).unwrap();
        assert!(report.totals.conserved());
        assert!(report.totals.offered > 0);
        assert!(report.totals.delivered > 0, "{:?}", report.totals);
        for l in &report.ledgers {
            assert_eq!(l.offered, l.delivered + l.lost + l.pending, "{l:?}");
        }
    }

    #[test]
    fn idle_population_does_not_change_ledgers() {
        let spec = small_spec();
        let mut crowded = spec.clone();
        crowded.n_idle = 5000;
        let a = CityEngine::run(&spec).unwrap();
        let b = CityEngine::run(&crowded).unwrap();
        assert_eq!(a.ledgers, b.ledgers);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.frames, b.frames);
    }

    #[test]
    fn dense_area_produces_contention_and_fd_aborts() {
        let mut spec = small_spec();
        spec.n_active = 24;
        spec.area_m = 1.0;
        spec.mean_interarrival_s = 2.0;
        let report = CityEngine::run(&spec).unwrap();
        assert!(
            report.totals.collisions + report.totals.deferrals > 0,
            "{:?}",
            report.totals
        );
        // FD mode cuts collisions short — but a victim already past
        // `frame - pilot_latency` bits finishes before its abort could
        // fire, so aborts can trail collisions.
        assert!(report.totals.aborts > 0, "{:?}", report.totals);
        assert!(report.totals.aborts <= report.totals.collisions);
    }

    #[test]
    fn aloha_collides_without_aborting() {
        let mut spec = small_spec();
        spec.n_active = 24;
        spec.area_m = 1.0;
        spec.mean_interarrival_s = 2.0;
        spec.mode = AccessMode::Aloha;
        let report = CityEngine::run(&spec).unwrap();
        assert!(report.totals.collisions > 0, "{:?}", report.totals);
        assert_eq!(report.totals.aborts, 0);
        assert_eq!(report.totals.deferrals, 0);
    }

    #[test]
    fn sampled_fidelity_delivers_on_clean_links() {
        let mut spec = small_spec();
        spec.n_active = 2;
        spec.sim_duration_s = 60.0;
        spec.fidelity = CityFidelity::Sampled;
        spec.pool = 2;
        let report = CityEngine::run(&spec).unwrap();
        assert!(report.totals.delivered > 0, "{:?}", report.totals);
        assert!(report.totals.conserved());
        // Sampled energy comes from the PHY, not the analytic tx load.
        assert!(report.totals.spent_j > 0.0);
    }

    #[test]
    fn spec_round_trips_and_partial_json_parses() {
        let spec = small_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: CityScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        let partial: CityScenarioSpec =
            serde_json::from_str(r#"{"n_active": 3, "seed": 9}"#).unwrap();
        assert_eq!(partial.n_active, 3);
        assert_eq!(partial.seed, 9);
        assert_eq!(partial.payload_len, CityScenarioSpec::default().payload_len);
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        let ok = small_spec();
        ok.validate().unwrap();
        let cases: &[fn(&mut CityScenarioSpec)] = &[
            |s: &mut CityScenarioSpec| s.sim_duration_s = 0.0,
            |s: &mut CityScenarioSpec| s.sim_duration_s = f64::NAN,
            |s: &mut CityScenarioSpec| s.mean_interarrival_s = -1.0,
            |s: &mut CityScenarioSpec| s.payload_len = 0,
            |s: &mut CityScenarioSpec| s.payload_len = 1 << 20,
            |s: &mut CityScenarioSpec| s.pool = 0,
            |s: &mut CityScenarioSpec| s.max_attempts = 0,
            |s: &mut CityScenarioSpec| s.burst_arrivals = 0,
            |s: &mut CityScenarioSpec| s.harvest_efficiency = 2.0,
            |s: &mut CityScenarioSpec| s.area_m = f64::INFINITY,
            |s: &mut CityScenarioSpec| s.link_dist_m = 0.0,
        ];
        for f in cases {
            let mut bad = small_spec();
            f(&mut bad);
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn cancellation_stops_the_run() {
        let mut spec = small_spec();
        spec.n_active = 64;
        spec.sim_duration_s = 3600.0;
        spec.mean_interarrival_s = 5.0;
        let mut engine = CityEngine::new();
        let mut report = CityReport::default();
        let cancel = || true;
        let err = engine
            .run_ctl(&spec, &mut report, Some(&cancel), &mut |_| {})
            .unwrap_err();
        assert!(matches!(err, PhyError::Cancelled { .. }));
    }

    #[test]
    fn progress_is_monotone_to_100() {
        let mut spec = small_spec();
        spec.n_active = 64;
        spec.mean_interarrival_s = 2.0;
        let mut engine = CityEngine::new();
        let mut report = CityReport::default();
        let mut seen = Vec::new();
        engine
            .run_ctl(&spec, &mut report, None, &mut |p| seen.push(p.done))
            .unwrap();
        assert_eq!(*seen.last().unwrap(), 100);
        assert!(seen.windows(2).all(|w| w[0] <= w[1]), "{seen:?}");
    }

    #[test]
    fn jsonl_reporter_emits_ledgers_then_summary() {
        let report = CityEngine::run(&small_spec()).unwrap();
        let mut buf = Vec::new();
        report.write_jsonl(&mut buf).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&buf).unwrap().lines().collect();
        assert_eq!(lines.len(), report.ledgers.len() + 1);
        for line in &lines[..lines.len() - 1] {
            let l: TagLedger = serde_json::from_str(line).unwrap();
            assert!(l.tag < report.n_active);
        }
        let summary = serde_json::value_from_str(lines.last().unwrap()).unwrap();
        assert!(matches!(
            summary.get("summary"),
            Some(serde_json::Value::Bool(true))
        ));
        assert!(matches!(
            summary.get("conserved"),
            Some(serde_json::Value::Bool(true))
        ));
    }

    #[test]
    fn extension_is_prefix_stable() {
        let mut short = small_spec();
        short.sim_duration_s = 60.0;
        let mut long = short.clone();
        long.sim_duration_s = 120.0;
        let a = CityEngine::run(&short).unwrap();
        let b = CityEngine::run(&long).unwrap();
        assert!(a.frames.len() <= b.frames.len());
        assert_eq!(a.frames[..], b.frames[..a.frames.len()]);
    }
}
