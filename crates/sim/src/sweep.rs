//! Order-preserving parallel parameter sweeps.
//!
//! Every experiment is a sweep: a list of parameter points, each measured
//! independently with its own derived seed. Points are embarrassingly
//! parallel, so they are fanned out over `std::thread::scope` workers
//! pulling from a shared atomic work index. Dynamic stealing matters
//! because sweep points are far from uniform cost (a point that locks
//! late or re-arms repeatedly simulates many more samples than a clean
//! one): static chunking would leave every other worker idle behind the
//! unlucky chunk. Workers tag each result with its input index and the
//! results are re-assembled in input order afterwards, so the output is
//! independent of scheduling.

#[cfg(feature = "trace")]
use fdb_core::trace::JsonlFileSink;
#[cfg(feature = "trace")]
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f` over every point, in parallel, preserving input order.
///
/// `f` must be deterministic per point (derive randomness from the point
/// itself, e.g. via `runner::derive_seed`) so the sweep's output does not
/// depend on scheduling.
pub fn parallel_sweep<P, R, F>(points: &[P], threads: usize, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads
        .max(1)
        .min(n)
        .min(std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1));
    if threads == 1 {
        return points.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let f = &f;
                let next = &next;
                scope.spawn(move || {
                    let mut mine: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        mine.push((i, f(&points[i])));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), n);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Runs a traced sweep: every point gets its **own** [`JsonlFileSink`]
/// writing to `<out_path>.part<i>`, and once all points finish, the part
/// files are concatenated into `out_path` in input order and removed.
///
/// Keying the part file to the *point index* (not the worker) makes the
/// merged file deterministic regardless of scheduling — the same property
/// [`parallel_sweep`] gives result vectors. Resident trace memory stays
/// bounded by `frame_cap` events per in-flight point (each sink stages at
/// most one frame), no matter how many frames the sweep runs in total.
///
/// `f` receives `(point_index, point, sink)` and should bracket its
/// frames through the sink (e.g. via [`crate::runner::run_link`] with
/// `LinkRun::new().with_sink(..)`). Frame indices restart at 0 for every
/// point.
///
/// On any sink or merge I/O error the sweep returns `Err`; part files
/// that were already merged are gone, unmerged ones are cleaned up.
#[cfg(feature = "trace")]
pub fn parallel_sweep_traced<P, R, F>(
    points: &[P],
    threads: usize,
    out_path: &Path,
    frame_cap: usize,
    f: F,
) -> std::io::Result<Vec<R>>
where
    P: Sync,
    R: Send,
    F: Fn(usize, &P, &mut JsonlFileSink) -> R + Sync,
{
    let part_path = |i: usize| -> PathBuf {
        PathBuf::from(format!("{}.part{i}", out_path.display()))
    };
    let indices: Vec<usize> = (0..points.len()).collect();
    let results = parallel_sweep(&indices, threads, |&i| -> std::io::Result<R> {
        let mut sink = JsonlFileSink::create(part_path(i))?.with_frame_cap(frame_cap);
        let r = f(i, &points[i], &mut sink);
        sink.finish()?;
        Ok(r)
    });

    let cleanup = |from: usize| {
        for i in from..points.len() {
            std::fs::remove_file(part_path(i)).ok();
        }
    };
    let mut out: Vec<R> = Vec::with_capacity(points.len());
    for r in results {
        match r {
            Ok(r) => out.push(r),
            Err(e) => {
                cleanup(0);
                return Err(e);
            }
        }
    }
    let merge = || -> std::io::Result<()> {
        let mut merged = std::io::BufWriter::new(std::fs::File::create(out_path)?);
        for i in 0..points.len() {
            let mut part = std::fs::File::open(part_path(i))?;
            std::io::copy(&mut part, &mut merged)?;
            std::fs::remove_file(part_path(i))?;
        }
        std::io::Write::flush(&mut merged)
    };
    if let Err(e) = merge() {
        cleanup(0);
        return Err(e);
    }
    Ok(out)
}

/// Builds a linear sweep of `n` points over `[lo, hi]` inclusive.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![lo];
    }
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// Builds a logarithmic sweep of `n` points over `[lo, hi]` inclusive
/// (both must be positive; invalid inputs produce an empty sweep).
pub fn logspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if lo <= 0.0 || hi <= 0.0 {
        return Vec::new();
    }
    linspace(lo.ln(), hi.ln(), n).into_iter().map(f64::exp).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let points: Vec<u64> = (0..64).collect();
        let out = parallel_sweep(&points, 8, |&p| p * p);
        let expect: Vec<u64> = points.iter().map(|p| p * p).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn single_thread_path() {
        let points = vec![1, 2, 3];
        assert_eq!(parallel_sweep(&points, 1, |&p| p + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let points: Vec<u32> = vec![];
        assert!(parallel_sweep(&points, 4, |&p| p).is_empty());
    }

    #[test]
    fn more_threads_than_points() {
        let points = vec![10, 20];
        assert_eq!(parallel_sweep(&points, 16, |&p| p / 10), vec![1, 2]);
    }

    #[test]
    fn skewed_costs_are_stolen_not_chunked() {
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        if cores < 2 {
            return; // stealing is unobservable on one core
        }
        // Point 0 is orders of magnitude more expensive than the rest.
        let points: Vec<usize> = (0..8).collect();
        let out = parallel_sweep(&points, 2, |&p| {
            let iters: u64 = if p == 0 { 20_000_000 } else { 1 };
            let mut acc = p as u64;
            for _ in 0..iters {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (std::thread::current().id(), p)
        });
        // Input order preserved regardless of scheduling.
        for (i, &(_, p)) in out.iter().enumerate() {
            assert_eq!(i, p);
        }
        // Static chunking would trap 4 of the 8 points behind the slow
        // one; with work-stealing the other worker drains them while the
        // slow worker is pinned.
        let slow_tid = out[0].0;
        let handled_by_slow = out.iter().filter(|&&(tid, _)| tid == slow_tid).count();
        assert!(
            handled_by_slow <= 2,
            "slow worker handled {handled_by_slow} of 8 points — chunking, not stealing"
        );
    }

    #[cfg(feature = "trace")]
    #[test]
    fn traced_sweep_merges_part_files_in_point_order() {
        use fdb_core::trace::{parse_trace_line, TraceEvent, TraceLine, TraceSink};
        let out = std::env::temp_dir().join(format!(
            "fdb_sweep_trace_{}.jsonl",
            std::process::id()
        ));
        let points: Vec<usize> = (0..9).collect();
        let results = parallel_sweep_traced(&points, 4, &out, 8, |_, &p, sink| {
            // Two "frames" per point, each with one recognisable event.
            for f in 0..2u64 {
                sink.begin_frame(f);
                sink.record(TraceEvent::Abort { sample: p });
                sink.end_frame();
            }
            p * 10
        })
        .unwrap();
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70, 80]);
        // The merged file carries every point's frames, grouped by point
        // in input order (frame indices restart per point).
        let text = std::fs::read_to_string(&out).unwrap();
        let mut point_of_abort = Vec::new();
        for line in text.lines() {
            if let TraceLine::Event(TraceEvent::Abort { sample }) =
                parse_trace_line(line).unwrap()
            {
                point_of_abort.push(sample);
            }
        }
        let expect: Vec<usize> = points.iter().flat_map(|&p| [p, p]).collect();
        assert_eq!(point_of_abort, expect, "merge not in point order");
        // All part files were cleaned up.
        for i in 0..points.len() {
            assert!(!std::path::Path::new(&format!("{}.part{i}", out.display())).exists());
        }
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn linspace_endpoints() {
        let v = linspace(1.0, 3.0, 5);
        assert_eq!(v.len(), 5);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[4] - 3.0).abs() < 1e-12);
        assert!((v[2] - 2.0).abs() < 1e-12);
        assert_eq!(linspace(0.0, 1.0, 1), vec![0.0]);
        assert!(linspace(0.0, 1.0, 0).is_empty());
    }

    #[test]
    fn logspace_ratios() {
        let v = logspace(1.0, 100.0, 3);
        assert!((v[0] - 1.0).abs() < 1e-9);
        assert!((v[1] - 10.0).abs() < 1e-9);
        assert!((v[2] - 100.0).abs() < 1e-9);
        assert!(logspace(-1.0, 10.0, 3).is_empty());
    }

    #[test]
    fn heavy_function_parallel_correctness() {
        // A function with real work to shake out races.
        let points: Vec<u64> = (0..32).collect();
        let out = parallel_sweep(&points, 8, |&p| {
            let mut acc = p;
            for _ in 0..10_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        });
        let serial: Vec<u64> = points
            .iter()
            .map(|&p| {
                let mut acc = p;
                for _ in 0..10_000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc
            })
            .collect();
        assert_eq!(out, serial);
    }
}
