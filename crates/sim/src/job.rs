//! The unified serde job surface: one [`JobSpec`] enum covering every
//! long-running computation the workspace knows how to run — link
//! measurements ([`MeasureSpec`]), fault-conformance grids
//! ([`crate::matrix`]), and adaptive-MAC scenario / ablation sessions
//! ([`ScenarioSpec`] / [`AblationPair`]) — so the job service, the probe
//! CLI, and tests all speak the same typed protocol.
//!
//! ## Content addressing
//!
//! Every job carries its full input (link config, spec, seeds) inside the
//! enum, so its canonical JSON form *is* the `(PhyConfig, JobSpec, seed)`
//! tuple the determinism work guarantees byte-exact results for. A job's
//! [`content_hash`](JobSpec::content_hash) — the 128-bit
//! [`ContentHash`] of that canonical form under the [`JobSpec::HASH_DOMAIN`]
//! version prefix — therefore addresses its result: same hash, same
//! result bytes. The service's on-disk cache is keyed by exactly this
//! hash, and `tests/job_hash.rs` pins golden hash vectors so a serde
//! reshape breaks CI instead of silently cold-starting (or aliasing) the
//! cache.
//!
//! ## Execution
//!
//! [`JobSpec::run`] executes any job with a [`RunControl`]: cooperative
//! cancellation (polled between frames / grid cells), coarse progress
//! callbacks, and — for link jobs under the `trace` feature — a
//! caller-owned [`TraceSink`] receiving the run's event stream.

use crate::city::{CityEngine, CityReport, CityScenarioSpec};
use crate::matrix::{class_plans, run_cell, MatrixCell};
use crate::metrics::LinkMetrics;
use crate::runner::{run_link, LinkRun, MeasureSpec};
use crate::scenario::{AblationPair, PairOutcome, ScenarioSpec};
use fdb_core::hash::ContentHash;
use fdb_core::link::LinkConfig;
#[cfg(feature = "trace")]
use fdb_core::trace::TraceSink;
use fdb_core::PhyError;
use fdb_mac::scenario::AdaptationReport;
use serde::{Deserialize, Serialize};

/// One labelled scenario of a matrix grid (a named `(link, spec)` pair).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixScenario {
    /// Label carried into each [`MatrixCell`].
    pub label: String,
    /// The link to measure.
    pub link: LinkConfig,
    /// How to measure it.
    pub spec: MeasureSpec,
}

/// One labelled fault plan of a matrix grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NamedPlan {
    /// Label carried into each [`MatrixCell`].
    pub label: String,
    /// The scripted schedule.
    pub plan: crate::faults::FaultPlan,
}

/// Any job the service can run, fully described in serde.
///
/// Externally tagged (`{"Link":{...}}`), like every workspace enum, and
/// self-contained: configs, specs, and seeds all travel inside, so the
/// canonical JSON of a `JobSpec` determines its result byte-for-byte.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JobSpec {
    /// One seeded link measurement ([`run_link`]).
    Link {
        /// The link to measure.
        link: LinkConfig,
        /// How to measure it (frames, payload, seed, faults, trace).
        spec: MeasureSpec,
    },
    /// A PhyConfig × FaultPlan conformance grid
    /// ([`crate::matrix::run_matrix`]).
    Matrix {
        /// The grid's scenarios (rows).
        scenarios: Vec<MatrixScenario>,
        /// The grid's fault plans (columns). Empty = the six built-in
        /// per-class plans seeded from `plan_seed`.
        #[serde(default)]
        plans: Vec<NamedPlan>,
        /// Seed for the built-in class plans when `plans` is empty.
        #[serde(default)]
        plan_seed: u64,
    },
    /// One adaptive-MAC session ([`ScenarioSpec::run`]).
    Scenario {
        /// The session to run.
        spec: ScenarioSpec,
    },
    /// One adaptive-vs-oblivious ablation pair ([`AblationPair::run`]).
    Ablation {
        /// The pair to run.
        pair: AblationPair,
    },
    /// One event-driven city-scale run ([`crate::city::CityEngine`]).
    City {
        /// The scenario to simulate.
        spec: CityScenarioSpec,
    },
}

/// A completed job's typed result (the `Serialize` side only — results
/// are compared and cached as canonical JSON bytes, never re-parsed into
/// floats).
#[derive(Debug, Clone, Serialize)]
// Results are built once per job and immediately serialized; the variant
// size spread (Link's inline LinkMetrics vs Scenario's Vec) never sits in
// a hot collection, so boxing would only complicate the serde surface.
#[allow(clippy::large_enum_variant)]
pub enum JobResult {
    /// Result of a [`JobSpec::Link`] job.
    Link {
        /// Aggregate metrics of the run.
        metrics: LinkMetrics,
    },
    /// Result of a [`JobSpec::Matrix`] job.
    Matrix {
        /// One cell per scenario × plan grid point, row-major.
        cells: Vec<MatrixCell>,
    },
    /// Result of a [`JobSpec::Scenario`] job.
    Scenario {
        /// The session's report.
        report: AdaptationReport,
    },
    /// Result of a [`JobSpec::Ablation`] job.
    Ablation {
        /// Both arms' reports and the margin verdict.
        outcome: PairOutcome,
    },
    /// Result of a [`JobSpec::City`] job.
    City {
        /// Per-tag ledgers, totals, and scheduler statistics.
        report: CityReport,
    },
}

/// Coarse progress of a running job, in job-specific units (frames for
/// link jobs, grid cells for matrices, arms for scenario/ablation jobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobProgress {
    /// Units completed.
    pub done: u64,
    /// Total units in the job.
    pub total: u64,
}

/// Per-run attachments for [`JobSpec::run`] — the job-level analogue of
/// [`LinkRun`].
#[derive(Default)]
pub struct RunControl<'a> {
    /// Cooperative cancellation, polled between frames (link jobs) or
    /// grid cells (matrix jobs); scenario/ablation jobs poll it only
    /// between arms. When it returns `true` the run stops with
    /// [`PhyError::Cancelled`].
    pub cancel: Option<&'a dyn Fn() -> bool>,
    /// Progress callback, invoked after each completed unit.
    pub progress: Option<&'a mut dyn FnMut(JobProgress)>,
    /// Caller-owned trace sink for [`JobSpec::Link`] jobs (frames
    /// bracketed with `begin_frame`/`end_frame`, overriding the spec's
    /// own `trace` selection). Ignored by the other job kinds, whose
    /// aggregate results have no per-frame event stream to expose.
    #[cfg(feature = "trace")]
    pub sink: Option<&'a mut dyn TraceSink>,
}

impl<'a> RunControl<'a> {
    /// No cancellation, no progress, no sink.
    pub fn new() -> Self {
        RunControl::default()
    }

    /// Attaches a cancellation predicate.
    pub fn with_cancel(mut self, cancel: &'a dyn Fn() -> bool) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Attaches a progress callback.
    pub fn with_progress(mut self, progress: &'a mut dyn FnMut(JobProgress)) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Attaches a trace sink (link jobs only).
    #[cfg(feature = "trace")]
    pub fn with_sink(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.sink = Some(sink);
        self
    }
}

impl JobSpec {
    /// Version prefix of the job content-address space. Bump it when the
    /// canonical form of any job input type changes shape — every address
    /// changes, so stale cache entries go unreachable instead of aliasing.
    pub const HASH_DOMAIN: &'static str = "fdb-job-v1";

    /// The job's stable 128-bit content address: the [`ContentHash`] of
    /// its canonical JSON under [`JobSpec::HASH_DOMAIN`]. Equal hashes ⇒
    /// byte-identical results (determinism); the result cache is keyed by
    /// this.
    pub fn content_hash(&self) -> ContentHash {
        ContentHash::of_canonical(Self::HASH_DOMAIN, self)
    }

    /// A short human label for progress displays and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Link { .. } => "link",
            JobSpec::Matrix { .. } => "matrix",
            JobSpec::Scenario { .. } => "scenario",
            JobSpec::Ablation { .. } => "ablation",
            JobSpec::City { .. } => "city",
        }
    }

    /// Total progress units [`JobSpec::run`] will report for this job.
    pub fn progress_total(&self) -> u64 {
        match self {
            JobSpec::Link { spec, .. } => spec.frames,
            JobSpec::Matrix {
                scenarios, plans, ..
            } => {
                let cols = if plans.is_empty() { 6 } else { plans.len() };
                (scenarios.len() * cols) as u64
            }
            JobSpec::Scenario { .. } => 1,
            JobSpec::Ablation { .. } => 2,
            // City runs report simulated-time percent, not event counts
            // (total events aren't known up front).
            JobSpec::City { .. } => 100,
        }
    }

    /// Cheap structural validation, run by the service before queueing so
    /// malformed jobs are rejected at submit time, not at run time.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            JobSpec::Link { spec, .. } => {
                if spec.frames == 0 {
                    return Err("link job: spec.frames must be ≥ 1".into());
                }
                if let Some(plan) = &spec.faults {
                    plan.validate().map_err(|e| format!("link job: {e}"))?;
                }
                Ok(())
            }
            JobSpec::Matrix {
                scenarios, plans, ..
            } => {
                if scenarios.is_empty() {
                    return Err("matrix job: at least one scenario required".into());
                }
                for named in plans {
                    named
                        .plan
                        .validate()
                        .map_err(|e| format!("matrix plan '{}': {e}", named.label))?;
                }
                Ok(())
            }
            JobSpec::Scenario { spec } => {
                spec.session
                    .validate()
                    .map_err(|e| format!("scenario '{}': {e}", spec.label))?;
                spec.resolve_plan()
                    .map_err(|e| format!("scenario '{}': {e}", spec.label))?;
                Ok(())
            }
            JobSpec::Ablation { pair } => {
                pair.adaptive
                    .validate()
                    .map_err(|e| format!("ablation '{}' adaptive arm: {e}", pair.label))?;
                pair.oblivious
                    .validate()
                    .map_err(|e| format!("ablation '{}' oblivious arm: {e}", pair.label))?;
                Ok(())
            }
            JobSpec::City { spec } => spec
                .validate()
                .map_err(|e| format!("city '{}': {e}", spec.label)),
        }
    }

    /// Runs the job to completion (or cancellation) under `ctrl`.
    ///
    /// Deterministic: identical specs produce byte-identical serialized
    /// results regardless of the attached control surface — observers,
    /// progress callbacks, and cancellation predicates never perturb the
    /// run's random streams. The exception is a link job with a trace
    /// sink attached (via `ctrl` or `spec.trace`): its metrics carry the
    /// sink's event counters, so traced and untraced runs of the same
    /// spec agree on every field *except* `trace_events`/`trace_dropped`.
    pub fn run(&self, ctrl: RunControl<'_>) -> Result<JobResult, PhyError> {
        let RunControl {
            cancel,
            mut progress,
            #[cfg(feature = "trace")]
            sink,
        } = ctrl;
        let total = self.progress_total();
        let tick = |done: u64, progress: &mut Option<&mut dyn FnMut(JobProgress)>| {
            if let Some(p) = progress.as_deref_mut() {
                p(JobProgress { done, total });
            }
        };
        let cancelled = |done: u64| -> Result<(), PhyError> {
            match cancel {
                Some(c) if c() => Err(PhyError::Cancelled { frames_done: done }),
                _ => Ok(()),
            }
        };
        match self {
            JobSpec::Link { link, spec } => {
                let mut run = LinkRun::new();
                if let Some(c) = cancel {
                    run = run.with_cancel(c);
                }
                #[cfg(feature = "trace")]
                if let Some(s) = sink {
                    run = run.with_sink(s);
                }
                let mut observe;
                if progress.is_some() {
                    let p = progress.as_deref_mut().expect("checked above");
                    observe = move |frame: u64, _: &fdb_core::link::FrameOutcome| {
                        p(JobProgress {
                            done: frame + 1,
                            total,
                        });
                    };
                    run = run.with_observe(&mut observe);
                }
                let metrics = run_link(link, spec, run)?;
                Ok(JobResult::Link { metrics })
            }
            JobSpec::Matrix {
                scenarios,
                plans,
                plan_seed,
            } => {
                let named: Vec<(String, crate::faults::FaultPlan)> = if plans.is_empty() {
                    class_plans(*plan_seed)
                        .into_iter()
                        .map(|(l, p)| (l.to_string(), p))
                        .collect()
                } else {
                    plans
                        .iter()
                        .map(|n| (n.label.clone(), n.plan.clone()))
                        .collect()
                };
                let mut cells = Vec::with_capacity(scenarios.len() * named.len());
                for scenario in scenarios {
                    for (plan_label, plan) in &named {
                        cancelled(cells.len() as u64)?;
                        cells.push(run_cell(
                            &scenario.label,
                            &scenario.link,
                            &scenario.spec,
                            plan_label,
                            plan,
                        )?);
                        tick(cells.len() as u64, &mut progress);
                    }
                }
                Ok(JobResult::Matrix { cells })
            }
            JobSpec::Scenario { spec } => {
                cancelled(0)?;
                let report = spec.run()?;
                tick(1, &mut progress);
                Ok(JobResult::Scenario { report })
            }
            JobSpec::Ablation { pair } => {
                cancelled(0)?;
                let outcome = pair.run()?;
                tick(2, &mut progress);
                Ok(JobResult::Ablation { outcome })
            }
            JobSpec::City { spec } => {
                let mut engine = CityEngine::new();
                let mut report = CityReport::default();
                let mut forward = |p: JobProgress| {
                    if let Some(pr) = progress.as_deref_mut() {
                        pr(p);
                    }
                };
                engine.run_ctl(spec, &mut report, cancel, &mut forward)?;
                Ok(JobResult::City { report })
            }
        }
    }
}

impl JobResult {
    /// The result's canonical JSON — the exact bytes the service caches
    /// and replays for repeated jobs.
    pub fn canonical_json(&self) -> String {
        fdb_core::hash::canonical_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_ambient::AmbientConfig;

    fn link_job(seed: u64) -> JobSpec {
        let mut link = LinkConfig::default_fd();
        link.ambient = AmbientConfig::Cw;
        link.field_noise_dbm = -160.0;
        JobSpec::Link {
            link,
            spec: MeasureSpec {
                frames: 3,
                payload_len: 16,
                seed,
                ..MeasureSpec::default()
            },
        }
    }

    #[test]
    fn hash_is_stable_across_calls_and_sensitive_to_seed() {
        let a = link_job(1);
        assert_eq!(a.content_hash(), a.content_hash());
        assert_eq!(a.content_hash(), link_job(1).content_hash());
        assert_ne!(a.content_hash(), link_job(2).content_hash());
    }

    #[test]
    fn spec_round_trips_through_serde() {
        let job = link_job(7);
        let json = serde_json::to_string(&job).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.content_hash(), job.content_hash());
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn run_is_deterministic_and_reports_progress() {
        let job = link_job(5);
        let mut seen = Vec::new();
        let mut progress = |p: JobProgress| seen.push(p);
        let a = job
            .run(RunControl::new().with_progress(&mut progress))
            .unwrap();
        let b = job.run(RunControl::new()).unwrap();
        assert_eq!(a.canonical_json(), b.canonical_json());
        assert_eq!(
            seen,
            vec![
                JobProgress { done: 1, total: 3 },
                JobProgress { done: 2, total: 3 },
                JobProgress { done: 3, total: 3 },
            ]
        );
    }

    #[test]
    fn cancel_stops_a_link_job() {
        let job = link_job(5);
        let cancel = || true;
        let err = job
            .run(RunControl::new().with_cancel(&cancel))
            .unwrap_err();
        assert!(matches!(err, PhyError::Cancelled { frames_done: 0 }));
    }

    #[test]
    fn matrix_defaults_to_class_plans() {
        let JobSpec::Link { link, spec } = link_job(2) else {
            unreachable!()
        };
        let job = JobSpec::Matrix {
            scenarios: vec![MatrixScenario {
                label: "default".into(),
                link,
                spec,
            }],
            plans: Vec::new(),
            plan_seed: 9,
        };
        assert_eq!(job.progress_total(), 6);
        job.validate().unwrap();
        let JobResult::Matrix { cells } = job.run(RunControl::new()).unwrap() else {
            panic!("wrong result kind")
        };
        assert_eq!(cells.len(), 6);
        for cell in &cells {
            assert!(cell.violations.is_empty(), "{:?}", cell.violations);
        }
    }

    #[test]
    fn city_job_round_trips_runs_and_cancels() {
        let job = JobSpec::City {
            spec: CityScenarioSpec {
                label: "job-test".into(),
                n_active: 4,
                sim_duration_s: 400.0,
                mean_interarrival_s: 30.0,
                ..CityScenarioSpec::default()
            },
        };
        assert_eq!(job.kind(), "city");
        job.validate().unwrap();
        let json = serde_json::to_string(&job).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.content_hash(), job.content_hash());

        let a = job.run(RunControl::new()).unwrap();
        let b = job.run(RunControl::new()).unwrap();
        assert_eq!(a.canonical_json(), b.canonical_json());
        let JobResult::City { report } = a else {
            panic!("wrong result kind")
        };
        assert!(report.totals.conserved());
        assert!(report.totals.offered > 0);

        // Cancellation is polled every few thousand events, so use a run
        // long enough to hit a poll point.
        let big = JobSpec::City {
            spec: CityScenarioSpec {
                label: "job-cancel".into(),
                n_active: 64,
                sim_duration_s: 3600.0,
                mean_interarrival_s: 5.0,
                ..CityScenarioSpec::default()
            },
        };
        let cancel = || true;
        let err = big
            .run(RunControl::new().with_cancel(&cancel))
            .unwrap_err();
        assert!(matches!(err, PhyError::Cancelled { .. }));

        let bad = JobSpec::City {
            spec: CityScenarioSpec {
                pool: 0,
                ..CityScenarioSpec::default()
            },
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_rejects_malformed_jobs() {
        let JobSpec::Link { link, mut spec } = link_job(2) else {
            unreachable!()
        };
        spec.frames = 0;
        assert!(JobSpec::Link {
            link: link.clone(),
            spec
        }
        .validate()
        .is_err());
        assert!(JobSpec::Matrix {
            scenarios: Vec::new(),
            plans: Vec::new(),
            plan_seed: 0
        }
        .validate()
        .is_err());
    }
}
