//! CSV and markdown emitters for experiment results.
//!
//! Experiments emit both: CSV for plotting, markdown for EXPERIMENTS.md.
//! Formatting is centralised here so every table in the repository looks
//! the same and regenerates byte-identically.

use std::fmt::Write as _;

/// A simple column-oriented table builder.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count; extra cells are
    /// truncated, missing cells filled with "-").
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.iter().take(self.headers.len()).cloned().collect();
        while row.len() < self.headers.len() {
            row.push("-".to_string());
        }
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (RFC-4180-ish: quotes only when needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a float with a sensible number of digits for tables.
pub fn fmt_sig(x: f64, digits: usize) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    if !x.is_finite() {
        return format!("{x}");
    }
    let mag = x.abs().log10().floor() as i32;
    if (-3..6).contains(&mag) {
        let decimals = (digits as i32 - 1 - mag).max(0) as usize;
        format!("{x:.decimals$}")
    } else {
        format!("{x:.prec$e}", prec = digits.saturating_sub(1))
    }
}

/// Formats a probability/BER with its Wilson interval: `p [lo, hi]`.
pub fn fmt_ber(counter: &fdb_dsp::stats::BerCounter) -> String {
    let (lo, hi) = counter.wilson_interval(1.96);
    format!(
        "{} [{}, {}]",
        fmt_sig(counter.ber(), 3),
        fmt_sig(lo, 2),
        fmt_sig(hi, 2)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["x,y".into(), "q\"z".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n1,2\n"));
        assert!(csv.contains("\"x,y\",\"q\"\"z\""));
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(&["col1", "col2"]);
        t.row(&["v1".into(), "v2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| col1 | col2 |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| v1 | v2 |"));
    }

    #[test]
    fn row_padding_and_truncation() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["1".into()]);
        t.row(&["1".into(), "2".into(), "3".into(), "4".into()]);
        assert_eq!(t.len(), 2);
        let md = t.to_markdown();
        assert!(md.contains("| 1 | - | - |"));
        assert!(!md.contains('4'));
    }

    #[test]
    fn fmt_sig_ranges() {
        assert_eq!(fmt_sig(0.0, 3), "0");
        // Rust's formatter rounds half-to-even: 1234.5 → "1234".
        assert_eq!(fmt_sig(1234.5, 3), "1234".to_string());
        assert_eq!(fmt_sig(0.00123, 3), "0.00123");
        assert!(fmt_sig(1.5e-9, 3).contains('e'));
        assert!(fmt_sig(f64::INFINITY, 3).contains("inf"));
    }

    #[test]
    fn fmt_ber_includes_interval() {
        let mut c = fdb_dsp::stats::BerCounter::new();
        for i in 0..1000 {
            c.record(true, i % 100 != 0);
        }
        let s = fmt_ber(&c);
        assert!(s.contains("0.0100"), "{s}");
        assert!(s.contains('['));
    }
}
