//! Aggregated link metrics.

use fdb_channel::impairment::FaultActivations;
use fdb_dsp::stats::BerCounter;
use serde::{Deserialize, Serialize};

/// Everything measured over a batch of frames on one link configuration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LinkMetrics {
    /// Frames attempted.
    pub frames: u64,
    /// Frames in which B achieved preamble lock.
    pub locked: u64,
    /// Frames in which the header parsed (payload attempt happened).
    pub decoded: u64,
    /// Frames delivered with every block intact.
    pub fully_delivered: u64,
    /// Forward-data bit errors (over frames that decoded).
    pub data_ber: BerCounter,
    /// Feedback bit errors (over frames with verified pilots).
    pub feedback_ber: BerCounter,
    /// Blocks delivered intact / total blocks received.
    pub blocks_ok: u64,
    /// Total blocks across decoded frames.
    pub blocks_total: u64,
    /// Frames whose feedback pilots verified at A.
    pub pilots_ok: u64,
    /// Candidate preamble locks declared across all frames (committed and
    /// rejected by two-stage verification). Absent in older recordings.
    #[serde(default)]
    pub sync_attempts: u64,
    /// Candidate locks rejected by two-stage verification (peak shape,
    /// flat history, preamble re-decode, header CRC).
    #[serde(default)]
    pub sync_rejections: u64,
    /// Diagnostic events accepted by the run's trace sink (0 without a
    /// sink). Absent in older recordings.
    #[serde(default)]
    pub trace_events: u64,
    /// Diagnostic events the trace sink lost to ring eviction, per-frame
    /// caps, or write failures.
    #[serde(default)]
    pub trace_dropped: u64,
    /// Per-class scripted fault activations across the run (all zero for
    /// clean runs). Absent in older recordings.
    #[serde(default)]
    pub faults: FaultActivations,
    /// Sum of airtime samples.
    pub airtime_samples: u64,
    /// Sum of elapsed samples.
    pub elapsed_samples: u64,
    /// Energy consumed by A (J).
    pub energy_a_j: f64,
    /// Energy consumed by B (J).
    pub energy_b_j: f64,
    /// Energy harvested by B (J).
    pub harvested_b_j: f64,
}

impl LinkMetrics {
    /// Fraction of frames that locked.
    pub fn lock_rate(&self) -> f64 {
        ratio(self.locked, self.frames)
    }

    /// Fraction of frames fully delivered.
    pub fn delivery_rate(&self) -> f64 {
        ratio(self.fully_delivered, self.frames)
    }

    /// Fraction of received blocks that verified.
    pub fn block_success_rate(&self) -> f64 {
        ratio(self.blocks_ok, self.blocks_total)
    }

    /// Per-block error probability (1 − success), counting frames that
    /// never decoded as all-blocks-lost is the caller's choice; this is
    /// over received blocks only.
    pub fn block_error_rate(&self) -> f64 {
        1.0 - self.block_success_rate()
    }

    /// Merges another batch.
    pub fn merge(&mut self, other: &LinkMetrics) {
        self.frames += other.frames;
        self.locked += other.locked;
        self.decoded += other.decoded;
        self.fully_delivered += other.fully_delivered;
        self.data_ber.merge(&other.data_ber);
        self.feedback_ber.merge(&other.feedback_ber);
        self.blocks_ok += other.blocks_ok;
        self.blocks_total += other.blocks_total;
        self.pilots_ok += other.pilots_ok;
        self.sync_attempts += other.sync_attempts;
        self.sync_rejections += other.sync_rejections;
        self.trace_events += other.trace_events;
        self.trace_dropped += other.trace_dropped;
        self.faults.merge(&other.faults);
        self.airtime_samples += other.airtime_samples;
        self.elapsed_samples += other.elapsed_samples;
        self.energy_a_j += other.energy_a_j;
        self.energy_b_j += other.energy_b_j;
        self.harvested_b_j += other.harvested_b_j;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let m = LinkMetrics::default();
        assert_eq!(m.lock_rate(), 0.0);
        assert_eq!(m.delivery_rate(), 0.0);
        assert_eq!(m.block_success_rate(), 0.0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = LinkMetrics {
            frames: 10,
            locked: 8,
            fully_delivered: 5,
            blocks_ok: 30,
            blocks_total: 40,
            energy_a_j: 1e-6,
            ..Default::default()
        };
        let b = LinkMetrics {
            frames: 10,
            locked: 10,
            fully_delivered: 9,
            blocks_ok: 39,
            blocks_total: 40,
            energy_a_j: 2e-6,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.frames, 20);
        assert_eq!(a.locked, 18);
        assert!((a.delivery_rate() - 0.7).abs() < 1e-12);
        assert!((a.block_success_rate() - 69.0 / 80.0).abs() < 1e-12);
        assert!((a.energy_a_j - 3e-6).abs() < 1e-18);
    }
}
