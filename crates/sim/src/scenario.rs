//! Adaptive-MAC scenario specs and the adaptive-vs-oblivious ablation
//! harness.
//!
//! A [`ScenarioSpec`] is the serde-visible description of one
//! [`fdb_mac::scenario`] session: a link, a [`SessionConfig`], and an
//! optional fault source (a scripted [`FaultPlan`] or a seeded
//! [`FaultGen`] expanded at run time). It plays the same role for MAC
//! sessions that [`crate::runner::MeasureSpec`] plays for PHY measurement
//! batches — identical spec JSON reproduces identical reports, byte for
//! byte.
//!
//! An [`AblationPair`] bundles two sessions over the *same* link and
//! fault timeline — one with a MAC mechanism enabled (adaptive), one
//! without (oblivious) — plus the goodput margin the adaptive arm must
//! clear. The bundled `configs/scenarios/*.json` pairs are the headline
//! acceptance gates: rate adaptation under a drift/distance ramp, early
//! abort under burst trains, flow control under ambient fades.

use crate::faults::{FaultGen, FaultPlan};
use fdb_channel::impairment::FrameFaults;
use fdb_core::link::LinkConfig;
use fdb_core::PhyError;
use fdb_mac::scenario::{
    nominal_frame_samples, run_session, AdaptationReport, SessionConfig,
};
use serde::{Deserialize, Serialize};

/// Where a scenario's faults come from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultSource {
    /// A hand-scripted plan, used as-is.
    Plan {
        /// The scripted schedule.
        plan: FaultPlan,
    },
    /// A seeded stochastic generator, expanded over the session's slot
    /// budget at its slowest frame length before the run starts.
    Generator {
        /// The generator.
        generator: FaultGen,
        /// Seed for the generator's draw lineage (and the expanded plan's
        /// engine lineage).
        seed: u64,
    },
}

impl FaultSource {
    /// Resolves the source into a concrete plan for a session running
    /// over `link`: generators are expanded over `slots` frames of
    /// `frame_samples` samples each.
    fn resolve(&self, slots: u64, frame_samples: usize) -> Result<FaultPlan, String> {
        match self {
            FaultSource::Plan { plan } => {
                plan.validate()?;
                Ok(plan.clone())
            }
            FaultSource::Generator { generator, seed } => {
                generator.generate(*seed, slots, frame_samples)
            }
        }
    }
}

/// One adaptive-MAC session, fully described in serde.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Human-readable tag carried into reports.
    pub label: String,
    /// The link both devices run over.
    pub link: LinkConfig,
    /// The session to run.
    pub session: SessionConfig,
    /// Fault source (`None` = clean run).
    #[serde(default)]
    pub faults: Option<FaultSource>,
}

/// Whole-frame window length (samples) at a session's slowest rate.
fn frame_envelope(link: &LinkConfig, session: &SessionConfig) -> usize {
    let phy = link.at_samples_per_chip(session.slowest_sps()).phy;
    nominal_frame_samples(&phy, session.payload_len) as usize
}

impl ScenarioSpec {
    /// Expands the fault source (if any) into the concrete plan this
    /// scenario will run under.
    pub fn resolve_plan(&self) -> Result<Option<FaultPlan>, String> {
        self.faults
            .as_ref()
            .map(|src| {
                src.resolve(
                    self.session.slot_cap(),
                    frame_envelope(&self.link, &self.session),
                )
            })
            .transpose()
    }

    /// Runs the session and returns its report.
    pub fn run(&self) -> Result<AdaptationReport, PhyError> {
        let plan = self
            .resolve_plan()
            .map_err(|reason| PhyError::InvalidConfig {
                field: "scenario.faults",
                reason,
            })?;
        run_session(&self.link, &self.session, |slot, engine| match &plan {
            Some(p) => p.frame_faults_into(slot, engine),
            None => false,
        })
    }
}

/// An adaptive-vs-oblivious ablation: two sessions over the same link and
/// fault timeline, and the margin the adaptive arm must win by.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationPair {
    /// Human-readable tag carried into reports.
    pub label: String,
    /// The link both arms run over.
    pub link: LinkConfig,
    /// The arm with the MAC mechanism under test enabled.
    pub adaptive: SessionConfig,
    /// The arm with it disabled (fixed rate / no abort / no
    /// backpressure).
    pub oblivious: SessionConfig,
    /// Shared fault source (`None` = clean pair).
    #[serde(default)]
    pub faults: Option<FaultSource>,
    /// Minimum adaptive-over-oblivious goodput ratio for the pair to
    /// pass.
    pub min_margin: f64,
}

/// Result of running one ablation pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairOutcome {
    /// The pair's label.
    pub label: String,
    /// The adaptive arm's report.
    pub adaptive: AdaptationReport,
    /// The oblivious arm's report.
    pub oblivious: AdaptationReport,
    /// Achieved adaptive-over-oblivious goodput ratio.
    pub margin: f64,
    /// The margin the pair had to clear.
    pub min_margin: f64,
    /// `margin ≥ min_margin`.
    pub pass: bool,
}

impl AblationPair {
    /// Runs both arms over the same expanded fault plan and scores the
    /// margin. The plan is expanded once, over the larger of the two
    /// arms' slot budgets and frame envelopes, so both arms face an
    /// identical impairment timeline.
    pub fn run(&self) -> Result<PairOutcome, PhyError> {
        if !(self.min_margin.is_finite() && self.min_margin > 0.0) {
            return Err(PhyError::InvalidConfig {
                field: "pair.min_margin",
                reason: format!("must be a positive finite ratio, got {}", self.min_margin),
            });
        }
        let slots = self.adaptive.slot_cap().max(self.oblivious.slot_cap());
        let envelope = frame_envelope(&self.link, &self.adaptive)
            .max(frame_envelope(&self.link, &self.oblivious));
        let plan = self
            .faults
            .as_ref()
            .map(|src| src.resolve(slots, envelope))
            .transpose()
            .map_err(|reason| PhyError::InvalidConfig {
                field: "pair.faults",
                reason,
            })?;
        let faults_for =
            |p: &Option<FaultPlan>, slot: u64, engine: &mut FrameFaults| match p {
                Some(p) => p.frame_faults_into(slot, engine),
                None => false,
            };
        let adaptive = run_session(&self.link, &self.adaptive, |s, e| faults_for(&plan, s, e))?;
        let oblivious = run_session(&self.link, &self.oblivious, |s, e| {
            faults_for(&plan, s, e)
        })?;
        let (a, o) = (adaptive.goodput_bps(), oblivious.goodput_bps());
        let margin = if o > 0.0 {
            a / o
        } else if a > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        Ok(PairOutcome {
            label: self.label.clone(),
            adaptive,
            oblivious,
            margin,
            min_margin: self.min_margin,
            pass: margin >= self.min_margin,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_mac::scenario::RatePolicy;

    fn quiet_link() -> LinkConfig {
        let mut cfg = LinkConfig::default_fd();
        cfg.field_noise_dbm = -160.0;
        cfg
    }

    fn fixed_session(seed: u64) -> SessionConfig {
        SessionConfig {
            frames: 3,
            payload_len: 32,
            seed,
            rate: RatePolicy::Fixed {
                samples_per_chip: 10,
            },
            early_abort: false,
            max_attempts: 2,
            retry_gap_samples: 200,
            flow: None,
            distance_ramp_m_per_slot: 0.0,
        }
    }

    #[test]
    fn scenario_spec_round_trips_and_runs() {
        let spec = ScenarioSpec {
            label: "clean".into(),
            link: quiet_link(),
            session: fixed_session(3),
            faults: None,
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.label, "clean");
        let report = back.run().unwrap();
        assert_eq!(report.delivered_payloads, 3);
    }

    #[test]
    fn generator_source_expands_over_the_slot_budget() {
        let spec = ScenarioSpec {
            label: "drift".into(),
            link: quiet_link(),
            session: fixed_session(3),
            faults: Some(FaultSource::Generator {
                generator: FaultGen::DriftRamp {
                    ppm_start: 100.0,
                    ppm_end: 1_000.0,
                    start_frame: 0,
                },
                seed: 5,
            }),
        };
        let plan = spec.resolve_plan().unwrap().unwrap();
        assert_eq!(plan.faults.len() as u64, spec.session.slot_cap());
        assert_eq!(plan.seed, 5);
    }

    #[test]
    fn pair_scores_margin_and_rejects_bad_margin() {
        let pair = AblationPair {
            label: "identity".into(),
            link: quiet_link(),
            adaptive: fixed_session(7),
            oblivious: fixed_session(7),
            faults: None,
            min_margin: 0.9,
        };
        let out = pair.run().unwrap();
        // Identical arms: margin is exactly 1.
        assert!((out.margin - 1.0).abs() < 1e-12);
        assert!(out.pass);
        let mut bad = pair;
        bad.min_margin = f64::NAN;
        assert!(bad.run().is_err());
    }
}
