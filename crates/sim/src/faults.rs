//! Scripted fault plans and the invariants a faulted run must uphold.
//!
//! A [`FaultPlan`] is the serde-visible schedule of impairments for one
//! measurement run: each [`FaultSpec`] pins one fault class (see
//! [`FaultKind`]) to a frame index and a sample window inside that frame.
//! [`crate::runner::measure_link`] consults the plan once per frame via
//! [`FaultPlan::frame_faults`] and hands the resulting engine to
//! `FdLink::run_frame_faulted`, so the plan travels inside
//! [`crate::runner::MeasureSpec`] like every other run parameter —
//! identical `(config, spec, plan, seed)` reproduce identical metrics,
//! byte for byte.
//!
//! The second half of this module is the conformance vocabulary: the
//! per-frame and per-run invariant checks
//! ([`check_frame_invariants`], [`check_link_invariants`]) that the fault
//! harness asserts over every `PhyConfig × FaultPlan` grid point. They are
//! deliberately plan-independent — a fault may cost delivery, but it must
//! never break the accounting.

use crate::metrics::LinkMetrics;
use crate::runner::derive_seed;
use fdb_core::config::PhyConfig;
use fdb_core::link::FrameOutcome;
pub use fdb_channel::impairment::{FaultKind, FaultTarget};
use fdb_channel::impairment::{FrameFaults, ScheduledFault};
use serde::{Deserialize, Serialize};

/// XOR salt separating the fault RNG lineage from every other stream
/// derived from a master seed.
const FAULT_SALT: u64 = 0x00FA_0175;

/// One scripted impairment, pinned to a frame of a measurement run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Frame index (0-based, within the run) the fault fires in.
    pub frame: u64,
    /// First afflicted sample of that frame. Older/terse JSON without the
    /// field starts at the frame's first sample.
    #[serde(default)]
    pub start_sample: usize,
    /// Window length in samples (≥ 1).
    pub duration_samples: usize,
    /// The impairment applied during the window.
    pub kind: FaultKind,
}

/// A complete scripted fault schedule for a measurement run.
///
/// Serialises to a small JSON document (see `configs/faults/`); an empty
/// plan is valid and injects nothing. The plan's `seed` feeds the faults'
/// own deterministic RNG — per frame, the engine seed is
/// `derive_seed(seed ^ FAULT_SALT, frame)`, so reordering the plan's
/// entries or changing an unrelated frame's faults never moves another
/// frame's noise draws.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the fault-local RNG lineage (independent of the link
    /// seed). Plans written without the field get 0.
    #[serde(default)]
    pub seed: u64,
    /// The scripted faults, in any order.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with no faults (what `MeasureSpec` defaults to).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Validates every entry: parameter bounds per class (via
    /// [`FaultKind::validate`]) plus a non-zero window length.
    pub fn validate(&self) -> Result<(), String> {
        for (i, f) in self.faults.iter().enumerate() {
            if f.duration_samples == 0 {
                return Err(format!(
                    "fault #{i} ({}): duration_samples must be ≥ 1",
                    f.kind.label()
                ));
            }
            f.kind
                .validate()
                .map_err(|e| format!("fault #{i}: {e}"))?;
        }
        Ok(())
    }

    /// Highest frame index any fault touches (`None` for an empty plan).
    pub fn max_frame(&self) -> Option<u64> {
        self.faults.iter().map(|f| f.frame).max()
    }

    /// Builds the injection engine for one frame, or `None` when the
    /// frame is clean (so the runner can keep the fast no-fault path).
    pub fn frame_faults(&self, frame: u64) -> Option<FrameFaults> {
        let scheduled: Vec<ScheduledFault> = self
            .faults
            .iter()
            .filter(|f| f.frame == frame)
            .map(|f| ScheduledFault {
                start: f.start_sample,
                duration: f.duration_samples,
                kind: f.kind,
            })
            .collect();
        if scheduled.is_empty() {
            return None;
        }
        Some(FrameFaults::new(
            scheduled,
            derive_seed(self.seed ^ FAULT_SALT, frame),
        ))
    }
}

/// Checks the invariants a single frame outcome must satisfy regardless of
/// what was injected into it. Returns a description of the first violation.
///
/// * the searcher respected its re-arm budget:
///   `sync_rejections ≤ max_rearms + 1` (the `+ 1` is the terminal
///   rejection that moves the receiver to `Failed`);
/// * rejections never exceed declared candidate locks;
/// * the delivered payload, the partial ledger and the block verdicts
///   agree with each other (delivery accounting survives corruption).
pub fn check_frame_invariants(out: &FrameOutcome, phy: &PhyConfig) -> Result<(), String> {
    if out.sync_rejections > out.sync_attempts {
        return Err(format!(
            "sync_rejections {} > sync_attempts {}",
            out.sync_rejections, out.sync_attempts
        ));
    }
    let budget = phy.sync.max_rearms + 1;
    if out.sync_rejections > budget {
        return Err(format!(
            "sync_rejections {} exceed re-arm budget {budget}",
            out.sync_rejections
        ));
    }
    // Each completed block contributes up to `block_len_bytes` payload
    // bytes (the final block may run short), so `n` blocks bound the
    // payload to ((n−1)·bl, n·bl].
    let ledger_ok = |bytes: usize, blocks: usize| -> bool {
        let bl = phy.block_len_bytes;
        if blocks == 0 {
            bytes == 0
        } else {
            bytes <= blocks * bl && bytes > (blocks - 1) * bl
        }
    };
    if !ledger_ok(out.partial_payload.len(), out.partial_blocks.len()) {
        return Err(format!(
            "partial ledger inconsistent: {} payload bytes vs {} blocks × {}",
            out.partial_payload.len(),
            out.partial_blocks.len(),
            phy.block_len_bytes
        ));
    }
    if let Some(res) = &out.delivered {
        if !out.b_locked {
            return Err("frame delivered without a committed lock".into());
        }
        if !ledger_ok(res.payload.len(), res.blocks.len()) {
            return Err(format!(
                "delivered ledger inconsistent: {} payload bytes vs {} blocks × {}",
                res.payload.len(),
                res.blocks.len(),
                phy.block_len_bytes
            ));
        }
    }
    Ok(())
}

/// Checks the aggregate invariants of a faulted measurement run. Returns a
/// description of the first violation.
pub fn check_link_invariants(m: &LinkMetrics) -> Result<(), String> {
    if m.sync_rejections > m.sync_attempts {
        return Err(format!(
            "sync_rejections {} > sync_attempts {}",
            m.sync_rejections, m.sync_attempts
        ));
    }
    if m.blocks_ok > m.blocks_total {
        return Err(format!(
            "blocks_ok {} > blocks_total {}",
            m.blocks_ok, m.blocks_total
        ));
    }
    for (name, v) in [
        ("fully_delivered", m.fully_delivered),
        ("decoded", m.decoded),
        ("locked", m.locked),
        ("pilots_ok", m.pilots_ok),
    ] {
        if v > m.frames {
            return Err(format!("{name} {v} > frames {}", m.frames));
        }
    }
    if m.fully_delivered > m.decoded {
        return Err(format!(
            "fully_delivered {} > decoded {}",
            m.fully_delivered, m.decoded
        ));
    }
    if m.data_ber.errors() > m.data_ber.bits() {
        return Err("data BER errors exceed bits".into());
    }
    if m.feedback_ber.errors() > m.feedback_ber.bits() {
        return Err("feedback BER errors exceed bits".into());
    }
    for (name, v) in [
        ("energy_a_j", m.energy_a_j),
        ("energy_b_j", m.energy_b_j),
        ("harvested_b_j", m.harvested_b_j),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(format!("{name} {v} is not a finite non-negative energy"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan {
            seed: 7,
            faults: vec![
                FaultSpec {
                    frame: 1,
                    start_sample: 500,
                    duration_samples: 2_000,
                    kind: FaultKind::NoiseBurst {
                        power_dbm: -75.0,
                        target: FaultTarget::B,
                    },
                },
                FaultSpec {
                    frame: 3,
                    start_sample: 0,
                    duration_samples: 10_000,
                    kind: FaultKind::ClockDrift { ppm: 900.0 },
                },
            ],
        }
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = sample_plan();
        let json = serde_json::to_string_pretty(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn terse_json_gets_defaults() {
        // No seed, no start_sample: both default.
        let json = r#"{"faults":[{"frame":0,"duration_samples":64,
            "kind":{"Dropout":{}}}]}"#;
        let plan: FaultPlan = serde_json::from_str(json).unwrap();
        assert_eq!(plan.seed, 0);
        assert_eq!(plan.faults[0].start_sample, 0);
        assert!(matches!(
            plan.faults[0].kind,
            FaultKind::Dropout {
                target: FaultTarget::Both
            }
        ));
        plan.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_entries() {
        let mut plan = sample_plan();
        plan.faults[0].duration_samples = 0;
        assert!(plan.validate().unwrap_err().contains("duration_samples"));
        let mut plan = sample_plan();
        plan.faults[1].kind = FaultKind::ClockDrift { ppm: f64::NAN };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn frame_faults_selects_by_frame() {
        let plan = sample_plan();
        assert!(plan.frame_faults(0).is_none());
        let ff = plan.frame_faults(1).unwrap();
        assert_eq!(ff.schedule().len(), 1);
        assert_eq!(ff.schedule()[0].start, 500);
        assert!(plan.frame_faults(2).is_none());
        assert!(plan.frame_faults(3).is_some());
        assert_eq!(plan.max_frame(), Some(3));
        assert_eq!(FaultPlan::empty().max_frame(), None);
    }

    #[test]
    fn frame_seeds_are_per_frame_and_plan_seeded() {
        // Same plan: frames 1 and 3 get different engine streams; a
        // different plan seed moves them both.
        let a = sample_plan();
        let mut b = sample_plan();
        b.seed = 8;
        let mut f1 = a.frame_faults(1).unwrap();
        let mut f1b = b.frame_faults(1).unwrap();
        let fx_a = f1.effects_at(600).field_b;
        let fx_b = f1b.effects_at(600).field_b;
        assert_ne!(fx_a, fx_b, "plan seed ignored");
        // Determinism: rebuilding reproduces the same draw.
        let mut f1c = a.frame_faults(1).unwrap();
        assert_eq!(f1c.effects_at(600).field_b, fx_a);
    }

    #[test]
    fn link_invariants_accept_default_and_catch_violations() {
        let m = LinkMetrics::default();
        check_link_invariants(&m).unwrap();
        let bad = LinkMetrics {
            frames: 2,
            locked: 3,
            ..Default::default()
        };
        assert!(check_link_invariants(&bad).is_err());
        let bad = LinkMetrics {
            blocks_ok: 5,
            blocks_total: 4,
            ..Default::default()
        };
        assert!(check_link_invariants(&bad).is_err());
        let bad = LinkMetrics {
            energy_a_j: f64::NAN,
            ..Default::default()
        };
        assert!(check_link_invariants(&bad).is_err());
    }
}
