//! Scripted fault plans and the invariants a faulted run must uphold.
//!
//! A [`FaultPlan`] is the serde-visible schedule of impairments for one
//! measurement run: each [`FaultSpec`] pins one fault class (see
//! [`FaultKind`]) to a frame index and a sample window inside that frame.
//! [`crate::runner::run_link`] consults the plan once per frame via
//! [`FaultPlan::frame_faults_into`] and hands the re-armed engine to
//! `FdLink::run_frame_into`, so the plan travels inside
//! [`crate::runner::MeasureSpec`] like every other run parameter —
//! identical `(config, spec, plan, seed)` reproduce identical metrics,
//! byte for byte.
//!
//! The second half of this module is the conformance vocabulary: the
//! per-frame and per-run invariant checks
//! ([`check_frame_invariants`], [`check_link_invariants`]) that the fault
//! harness asserts over every `PhyConfig × FaultPlan` grid point. They are
//! deliberately plan-independent — a fault may cost delivery, but it must
//! never break the accounting.

use crate::metrics::LinkMetrics;
use crate::runner::derive_seed;
use fdb_core::config::PhyConfig;
use fdb_core::link::FrameOutcome;
pub use fdb_channel::impairment::{FaultKind, FaultTarget};
use fdb_channel::impairment::{FaultRng, FrameFaults, ScheduledFault};
use serde::{Deserialize, Serialize};

/// XOR salt separating the fault RNG lineage from every other stream
/// derived from a master seed.
const FAULT_SALT: u64 = 0x00FA_0175;

/// One scripted impairment, pinned to a frame of a measurement run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Frame index (0-based, within the run) the fault fires in.
    pub frame: u64,
    /// First afflicted sample of that frame. Older/terse JSON without the
    /// field starts at the frame's first sample.
    #[serde(default)]
    pub start_sample: usize,
    /// Window length in samples (≥ 1).
    pub duration_samples: usize,
    /// The impairment applied during the window.
    pub kind: FaultKind,
}

/// A complete scripted fault schedule for a measurement run.
///
/// Serialises to a small JSON document (see `configs/faults/`); an empty
/// plan is valid and injects nothing. The plan's `seed` feeds the faults'
/// own deterministic RNG — per frame, the engine seed is
/// `derive_seed(seed ^ FAULT_SALT, frame)`, so reordering the plan's
/// entries or changing an unrelated frame's faults never moves another
/// frame's noise draws.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the fault-local RNG lineage (independent of the link
    /// seed). Plans written without the field get 0.
    #[serde(default)]
    pub seed: u64,
    /// The scripted faults, in any order.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with no faults (what `MeasureSpec` defaults to).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Validates every entry: parameter bounds per class (via
    /// [`FaultKind::validate`]) plus a non-zero window length.
    pub fn validate(&self) -> Result<(), String> {
        for (i, f) in self.faults.iter().enumerate() {
            if f.duration_samples == 0 {
                return Err(format!(
                    "fault #{i} ({}): duration_samples must be ≥ 1",
                    f.kind.label()
                ));
            }
            f.kind
                .validate()
                .map_err(|e| format!("fault #{i}: {e}"))?;
        }
        Ok(())
    }

    /// Highest frame index any fault touches (`None` for an empty plan).
    pub fn max_frame(&self) -> Option<u64> {
        self.faults.iter().map(|f| f.frame).max()
    }

    /// Builds the injection engine for one frame, or `None` when the
    /// frame is clean (so the runner can keep the fast no-fault path).
    pub fn frame_faults(&self, frame: u64) -> Option<FrameFaults> {
        let scheduled: Vec<ScheduledFault> = self
            .faults
            .iter()
            .filter(|f| f.frame == frame)
            .map(|f| ScheduledFault {
                start: f.start_sample,
                duration: f.duration_samples,
                kind: f.kind,
            })
            .collect();
        if scheduled.is_empty() {
            return None;
        }
        Some(FrameFaults::new(
            scheduled,
            derive_seed(self.seed ^ FAULT_SALT, frame),
        ))
    }

    /// Allocation-free variant of [`frame_faults`](FaultPlan::frame_faults):
    /// re-arms a caller-owned engine in place with the frame's schedule and
    /// seed lineage, retaining buffer capacity across frames. Returns
    /// `false` (engine left empty) when the frame is clean, so the runner
    /// can keep the fast no-fault path.
    pub fn frame_faults_into(&self, frame: u64, engine: &mut FrameFaults) -> bool {
        engine.rearm(
            self.faults
                .iter()
                .filter(|f| f.frame == frame)
                .map(|f| ScheduledFault {
                    start: f.start_sample,
                    duration: f.duration_samples,
                    kind: f.kind,
                }),
            derive_seed(self.seed ^ FAULT_SALT, frame),
        );
        !engine.is_empty()
    }
}

/// XOR salt separating the generator draw lineage from the engine lineage
/// (a generated plan's own `seed` feeds [`FaultPlan::frame_faults`] too —
/// the two streams must not alias).
const GEN_SALT: u64 = 0x6E6E_FA17;

/// Seeded stochastic fault-plan generator with validated, bounded-energy
/// parameters.
///
/// Where a [`FaultPlan`] scripts each impairment by hand, a `FaultGen`
/// *expands* into one: [`FaultGen::generate`] draws a schedule from a
/// splitmix lineage keyed per frame (`derive_seed(seed ^ GEN_SALT,
/// frame)`), so frame `k`'s draws are identical whether the session runs
/// 10 frames or 100, and the expanded plan replays byte-identically for
/// the same `(generator, seed, frames, frame_samples)`. Every generated
/// plan passes [`FaultPlan::validate`] by construction; the generator's
/// own [`validate`](FaultGen::validate) additionally bounds the injected
/// energy (burst rate/power/width caps) so a stochastic scenario cannot
/// degenerate into a jammed channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultGen {
    /// Trains of short noise bursts: each frame draws a burst count from
    /// the expected rate, then a start, width and power per burst.
    BurstTrain {
        /// Expected bursts per frame (≤ 16).
        bursts_per_frame: f64,
        /// Burst power draw range, dBm (each ≤ 60, min ≤ max).
        power_dbm_min: f64,
        /// Upper end of the power range.
        power_dbm_max: f64,
        /// Burst width draw range, samples (min ≥ 1, min ≤ max).
        duration_min_samples: usize,
        /// Upper end of the width range.
        duration_max_samples: usize,
        /// Which device the bursts hit.
        #[serde(default)]
        target: FaultTarget,
    },
    /// Clock drift ramping linearly from `ppm_start` at `start_frame` to
    /// `ppm_end` at the last frame — a tag's oscillator pulling away (or a
    /// walk-away Doppler stand-in). Each afflicted frame gets one
    /// whole-frame `ClockDrift` window.
    DriftRamp {
        /// Drift at `start_frame`, ppm.
        ppm_start: f64,
        /// Drift at the final frame, ppm (|ppm| ≤ 100 000).
        ppm_end: f64,
        /// First afflicted frame.
        #[serde(default)]
        start_frame: u64,
    },
    /// Alternating deep-fade / clear epochs of the ambient carrier, with
    /// optional per-epoch length jitter. Each faded frame gets one
    /// whole-frame `AmbientFade` window.
    FadeEpochs {
        /// Fade depth, dB (≥ 0).
        depth_db: f64,
        /// Nominal faded-epoch length, frames (≥ 1).
        fade_frames: u64,
        /// Nominal clear-epoch length, frames (≥ 1).
        clear_frames: u64,
        /// Uniform ±jitter applied to each epoch's length, frames
        /// (must be < the shorter nominal epoch).
        #[serde(default)]
        jitter_frames: u64,
    },
}

impl FaultGen {
    /// Validates the generator's parameter bounds (delegating per-class
    /// limits to [`FaultKind::validate`] on the extreme points) and its
    /// energy budget.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            FaultGen::BurstTrain {
                bursts_per_frame,
                power_dbm_min,
                power_dbm_max,
                duration_min_samples,
                duration_max_samples,
                target,
            } => {
                if !(bursts_per_frame.is_finite() && (0.0..=16.0).contains(&bursts_per_frame)) {
                    return Err(format!(
                        "burst_train: bursts_per_frame {bursts_per_frame} outside [0, 16]"
                    ));
                }
                if !(power_dbm_min.is_finite() && power_dbm_max.is_finite())
                    || power_dbm_min > power_dbm_max
                {
                    return Err(format!(
                        "burst_train: power range [{power_dbm_min}, {power_dbm_max}] invalid"
                    ));
                }
                FaultKind::NoiseBurst {
                    power_dbm: power_dbm_max,
                    target,
                }
                .validate()?;
                if duration_min_samples == 0 || duration_min_samples > duration_max_samples {
                    return Err(format!(
                        "burst_train: duration range [{duration_min_samples}, \
                         {duration_max_samples}] invalid"
                    ));
                }
            }
            FaultGen::DriftRamp {
                ppm_start, ppm_end, ..
            } => {
                FaultKind::ClockDrift { ppm: ppm_start }.validate()?;
                FaultKind::ClockDrift { ppm: ppm_end }.validate()?;
            }
            FaultGen::FadeEpochs {
                depth_db,
                fade_frames,
                clear_frames,
                jitter_frames,
            } => {
                FaultKind::AmbientFade { depth_db }.validate()?;
                if fade_frames == 0 || clear_frames == 0 {
                    return Err("fade_epochs: epoch lengths must be ≥ 1 frame".into());
                }
                if jitter_frames >= fade_frames.min(clear_frames) {
                    return Err(format!(
                        "fade_epochs: jitter_frames {jitter_frames} must be below the \
                         shorter nominal epoch {}",
                        fade_frames.min(clear_frames)
                    ));
                }
            }
        }
        Ok(())
    }

    /// Expands the generator into a scripted [`FaultPlan`] covering frames
    /// `0..frames`, each `frame_samples` long. The returned plan carries
    /// `seed` (its engine lineage is salted differently from the draws
    /// made here, so generation and injection never share a stream).
    pub fn generate(
        &self,
        seed: u64,
        frames: u64,
        frame_samples: usize,
    ) -> Result<FaultPlan, String> {
        self.validate()?;
        if frames == 0 || frame_samples == 0 {
            return Err("generate: frames and frame_samples must be ≥ 1".into());
        }
        let mut faults = Vec::new();
        match *self {
            FaultGen::BurstTrain {
                bursts_per_frame,
                power_dbm_min,
                power_dbm_max,
                duration_min_samples,
                duration_max_samples,
                target,
            } => {
                for frame in 0..frames {
                    let mut rng =
                        FaultRng::new(derive_seed(seed ^ GEN_SALT, frame));
                    let whole = bursts_per_frame.floor() as u64;
                    let extra = rng.next_f64() < bursts_per_frame.fract();
                    for _ in 0..whole + u64::from(extra) {
                        let span = duration_max_samples - duration_min_samples;
                        let duration = duration_min_samples
                            + (rng.next_u64() as usize) % (span + 1);
                        let duration = duration.min(frame_samples);
                        let latest_start = frame_samples - duration;
                        let start = (rng.next_u64() as usize) % (latest_start + 1);
                        let power_dbm = power_dbm_min
                            + (power_dbm_max - power_dbm_min) * rng.next_f64();
                        faults.push(FaultSpec {
                            frame,
                            start_sample: start,
                            duration_samples: duration,
                            kind: FaultKind::NoiseBurst { power_dbm, target },
                        });
                    }
                }
            }
            FaultGen::DriftRamp {
                ppm_start,
                ppm_end,
                start_frame,
            } => {
                let ramp_span = frames.saturating_sub(start_frame + 1).max(1) as f64;
                for frame in start_frame..frames {
                    let progress = (frame - start_frame) as f64 / ramp_span;
                    let ppm = ppm_start + (ppm_end - ppm_start) * progress;
                    faults.push(FaultSpec {
                        frame,
                        start_sample: 0,
                        duration_samples: frame_samples,
                        kind: FaultKind::ClockDrift { ppm },
                    });
                }
            }
            FaultGen::FadeEpochs {
                depth_db,
                fade_frames,
                clear_frames,
                jitter_frames,
            } => {
                let jitter = |rng: &mut FaultRng, nominal: u64| -> u64 {
                    if jitter_frames == 0 {
                        return nominal;
                    }
                    let span = 2 * jitter_frames + 1;
                    nominal + rng.next_u64() % span - jitter_frames
                };
                let mut frame = 0u64;
                let mut epoch = 0u64;
                let mut fading = false;
                while frame < frames {
                    // Epoch draws are keyed by epoch index, not frame, so
                    // a jittered epoch never shifts later epochs' draws.
                    let mut rng =
                        FaultRng::new(derive_seed(seed ^ GEN_SALT, epoch));
                    let len = jitter(
                        &mut rng,
                        if fading { fade_frames } else { clear_frames },
                    );
                    if fading {
                        for f in frame..(frame + len).min(frames) {
                            faults.push(FaultSpec {
                                frame: f,
                                start_sample: 0,
                                duration_samples: frame_samples,
                                kind: FaultKind::AmbientFade { depth_db },
                            });
                        }
                    }
                    frame += len;
                    epoch += 1;
                    fading = !fading;
                }
            }
        }
        let plan = FaultPlan { seed, faults };
        plan.validate()?;
        Ok(plan)
    }
}

/// Checks the invariants a single frame outcome must satisfy regardless of
/// what was injected into it. Returns a description of the first violation.
///
/// * the searcher respected its re-arm budget:
///   `sync_rejections ≤ max_rearms + 1` (the `+ 1` is the terminal
///   rejection that moves the receiver to `Failed`);
/// * rejections never exceed declared candidate locks;
/// * the delivered payload, the partial ledger and the block verdicts
///   agree with each other (delivery accounting survives corruption).
pub fn check_frame_invariants(out: &FrameOutcome, phy: &PhyConfig) -> Result<(), String> {
    if out.sync_rejections > out.sync_attempts {
        return Err(format!(
            "sync_rejections {} > sync_attempts {}",
            out.sync_rejections, out.sync_attempts
        ));
    }
    let budget = phy.sync.max_rearms + 1;
    if out.sync_rejections > budget {
        return Err(format!(
            "sync_rejections {} exceed re-arm budget {budget}",
            out.sync_rejections
        ));
    }
    // Each completed block contributes up to `block_len_bytes` payload
    // bytes (the final block may run short), so `n` blocks bound the
    // payload to ((n−1)·bl, n·bl].
    let ledger_ok = |bytes: usize, blocks: usize| -> bool {
        let bl = phy.block_len_bytes;
        if blocks == 0 {
            bytes == 0
        } else {
            bytes <= blocks * bl && bytes > (blocks - 1) * bl
        }
    };
    if !ledger_ok(out.partial_payload.len(), out.partial_blocks.len()) {
        return Err(format!(
            "partial ledger inconsistent: {} payload bytes vs {} blocks × {}",
            out.partial_payload.len(),
            out.partial_blocks.len(),
            phy.block_len_bytes
        ));
    }
    if let Some(res) = &out.delivered {
        if !out.b_locked {
            return Err("frame delivered without a committed lock".into());
        }
        if !ledger_ok(res.payload.len(), res.blocks.len()) {
            return Err(format!(
                "delivered ledger inconsistent: {} payload bytes vs {} blocks × {}",
                res.payload.len(),
                res.blocks.len(),
                phy.block_len_bytes
            ));
        }
    }
    Ok(())
}

/// Checks the aggregate invariants of a faulted measurement run. Returns a
/// description of the first violation.
pub fn check_link_invariants(m: &LinkMetrics) -> Result<(), String> {
    if m.sync_rejections > m.sync_attempts {
        return Err(format!(
            "sync_rejections {} > sync_attempts {}",
            m.sync_rejections, m.sync_attempts
        ));
    }
    if m.blocks_ok > m.blocks_total {
        return Err(format!(
            "blocks_ok {} > blocks_total {}",
            m.blocks_ok, m.blocks_total
        ));
    }
    for (name, v) in [
        ("fully_delivered", m.fully_delivered),
        ("decoded", m.decoded),
        ("locked", m.locked),
        ("pilots_ok", m.pilots_ok),
    ] {
        if v > m.frames {
            return Err(format!("{name} {v} > frames {}", m.frames));
        }
    }
    if m.fully_delivered > m.decoded {
        return Err(format!(
            "fully_delivered {} > decoded {}",
            m.fully_delivered, m.decoded
        ));
    }
    if m.data_ber.errors() > m.data_ber.bits() {
        return Err("data BER errors exceed bits".into());
    }
    if m.feedback_ber.errors() > m.feedback_ber.bits() {
        return Err("feedback BER errors exceed bits".into());
    }
    for (name, v) in [
        ("energy_a_j", m.energy_a_j),
        ("energy_b_j", m.energy_b_j),
        ("harvested_b_j", m.harvested_b_j),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(format!("{name} {v} is not a finite non-negative energy"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan {
            seed: 7,
            faults: vec![
                FaultSpec {
                    frame: 1,
                    start_sample: 500,
                    duration_samples: 2_000,
                    kind: FaultKind::NoiseBurst {
                        power_dbm: -75.0,
                        target: FaultTarget::B,
                    },
                },
                FaultSpec {
                    frame: 3,
                    start_sample: 0,
                    duration_samples: 10_000,
                    kind: FaultKind::ClockDrift { ppm: 900.0 },
                },
            ],
        }
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = sample_plan();
        let json = serde_json::to_string_pretty(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn terse_json_gets_defaults() {
        // No seed, no start_sample: both default.
        let json = r#"{"faults":[{"frame":0,"duration_samples":64,
            "kind":{"Dropout":{}}}]}"#;
        let plan: FaultPlan = serde_json::from_str(json).unwrap();
        assert_eq!(plan.seed, 0);
        assert_eq!(plan.faults[0].start_sample, 0);
        assert!(matches!(
            plan.faults[0].kind,
            FaultKind::Dropout {
                target: FaultTarget::Both
            }
        ));
        plan.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_entries() {
        let mut plan = sample_plan();
        plan.faults[0].duration_samples = 0;
        assert!(plan.validate().unwrap_err().contains("duration_samples"));
        let mut plan = sample_plan();
        plan.faults[1].kind = FaultKind::ClockDrift { ppm: f64::NAN };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn frame_faults_selects_by_frame() {
        let plan = sample_plan();
        assert!(plan.frame_faults(0).is_none());
        let ff = plan.frame_faults(1).unwrap();
        assert_eq!(ff.schedule().len(), 1);
        assert_eq!(ff.schedule()[0].start, 500);
        assert!(plan.frame_faults(2).is_none());
        assert!(plan.frame_faults(3).is_some());
        assert_eq!(plan.max_frame(), Some(3));
        assert_eq!(FaultPlan::empty().max_frame(), None);
    }

    #[test]
    fn frame_seeds_are_per_frame_and_plan_seeded() {
        // Same plan: frames 1 and 3 get different engine streams; a
        // different plan seed moves them both.
        let a = sample_plan();
        let mut b = sample_plan();
        b.seed = 8;
        let mut f1 = a.frame_faults(1).unwrap();
        let mut f1b = b.frame_faults(1).unwrap();
        let fx_a = f1.effects_at(600).field_b;
        let fx_b = f1b.effects_at(600).field_b;
        assert_ne!(fx_a, fx_b, "plan seed ignored");
        // Determinism: rebuilding reproduces the same draw.
        let mut f1c = a.frame_faults(1).unwrap();
        assert_eq!(f1c.effects_at(600).field_b, fx_a);
    }

    #[test]
    fn burst_train_generates_valid_bounded_plans() {
        let train = FaultGen::BurstTrain {
            bursts_per_frame: 1.5,
            power_dbm_min: -80.0,
            power_dbm_max: -60.0,
            duration_min_samples: 200,
            duration_max_samples: 2_000,
            target: FaultTarget::B,
        };
        let plan = train.generate(9, 20, 30_000).unwrap();
        plan.validate().unwrap();
        assert!(!plan.is_empty());
        // Expected ~30 bursts over 20 frames; the bound is generous.
        assert!(plan.faults.len() >= 10 && plan.faults.len() <= 50);
        for f in &plan.faults {
            assert!(f.start_sample + f.duration_samples <= 30_000);
            match f.kind {
                FaultKind::NoiseBurst { power_dbm, target } => {
                    assert!((-80.0..=-60.0).contains(&power_dbm));
                    assert_eq!(target, FaultTarget::B);
                }
                _ => panic!("wrong class"),
            }
        }
        // Byte-identical replay, and the seed moves the draws.
        assert_eq!(plan, train.generate(9, 20, 30_000).unwrap());
        assert_ne!(plan, train.generate(10, 20, 30_000).unwrap());
        // Frame k's draws are stable under a longer run.
        let longer = train.generate(9, 40, 30_000).unwrap();
        let head: Vec<_> = longer.faults.iter().filter(|f| f.frame < 20).collect();
        assert_eq!(head.len(), plan.faults.len());
    }

    #[test]
    fn drift_ramp_is_monotonic_and_whole_frame() {
        let ramp = FaultGen::DriftRamp {
            ppm_start: 0.0,
            ppm_end: 4_000.0,
            start_frame: 2,
        };
        let plan = ramp.generate(3, 10, 25_000).unwrap();
        assert_eq!(plan.faults.len(), 8);
        let ppms: Vec<f64> = plan
            .faults
            .iter()
            .map(|f| match f.kind {
                FaultKind::ClockDrift { ppm } => ppm,
                _ => panic!("wrong class"),
            })
            .collect();
        assert_eq!(ppms[0], 0.0);
        assert_eq!(*ppms.last().unwrap(), 4_000.0);
        assert!(ppms.windows(2).all(|w| w[0] < w[1]));
        assert!(plan.faults.iter().all(|f| f.duration_samples == 25_000));
    }

    #[test]
    fn fade_epochs_alternate_and_jitter_stays_bounded() {
        let fades = FaultGen::FadeEpochs {
            depth_db: 18.0,
            fade_frames: 3,
            clear_frames: 4,
            jitter_frames: 1,
        };
        let plan = fades.generate(5, 40, 20_000).unwrap();
        plan.validate().unwrap();
        let faded: Vec<u64> = plan.faults.iter().map(|f| f.frame).collect();
        assert!(!faded.is_empty());
        // First epoch is clear: frame 0 is never faded.
        assert!(!faded.contains(&0));
        // A faded frame appears at most once (whole-frame windows).
        let unique: std::collections::HashSet<_> = faded.iter().collect();
        assert_eq!(unique.len(), faded.len());
        assert_eq!(plan, fades.generate(5, 40, 20_000).unwrap());
    }

    #[test]
    fn generators_reject_unbounded_energy() {
        assert!(FaultGen::BurstTrain {
            bursts_per_frame: 40.0,
            power_dbm_min: -80.0,
            power_dbm_max: -60.0,
            duration_min_samples: 1,
            duration_max_samples: 10,
            target: FaultTarget::Both,
        }
        .validate()
        .is_err());
        assert!(FaultGen::BurstTrain {
            bursts_per_frame: 1.0,
            power_dbm_min: -10.0,
            power_dbm_max: 70.0,
            duration_min_samples: 1,
            duration_max_samples: 10,
            target: FaultTarget::Both,
        }
        .validate()
        .is_err());
        assert!(FaultGen::DriftRamp {
            ppm_start: 0.0,
            ppm_end: 200_000.0,
            start_frame: 0,
        }
        .validate()
        .is_err());
        assert!(FaultGen::FadeEpochs {
            depth_db: 10.0,
            fade_frames: 2,
            clear_frames: 2,
            jitter_frames: 2,
        }
        .validate()
        .is_err());
        // Round trip through JSON.
        let g = FaultGen::DriftRamp {
            ppm_start: 100.0,
            ppm_end: 2_000.0,
            start_frame: 0,
        };
        let back: FaultGen =
            serde_json::from_str(&serde_json::to_string(&g).unwrap()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn link_invariants_accept_default_and_catch_violations() {
        let m = LinkMetrics::default();
        check_link_invariants(&m).unwrap();
        let bad = LinkMetrics {
            frames: 2,
            locked: 3,
            ..Default::default()
        };
        assert!(check_link_invariants(&bad).is_err());
        let bad = LinkMetrics {
            blocks_ok: 5,
            blocks_total: 4,
            ..Default::default()
        };
        assert!(check_link_invariants(&bad).is_err());
        let bad = LinkMetrics {
            energy_a_j: f64::NAN,
            ..Default::default()
        };
        assert!(check_link_invariants(&bad).is_err());
    }
}
