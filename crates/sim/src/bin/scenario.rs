//! Scenario runner: measure any link configuration from a JSON file.
//!
//! ```text
//! # print a default scenario to stdout
//! cargo run --release -p fdb-sim --bin scenario -- --emit-default > my.json
//! # edit my.json, then run it
//! cargo run --release -p fdb-sim --bin scenario -- my.json
//! # machine-readable output
//! cargo run --release -p fdb-sim --bin scenario -- my.json --json
//! ```
//!
//! The scenario file is `{ "link": <LinkConfig>, "spec": <MeasureSpec> }`;
//! every field of both structures is documented on the corresponding Rust
//! type. Runs are deterministic in the file's `spec.seed`.

use fdb_core::link::LinkConfig;
use fdb_sim::runner::{run_link, LinkRun, MeasureSpec};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Scenario {
    link: LinkConfig,
    spec: MeasureSpec,
}

impl Scenario {
    fn default_scenario() -> Self {
        Scenario {
            link: LinkConfig::default_fd(),
            spec: MeasureSpec {
                frames: 50,
                payload_len: 64,
                seed: 1,
                feedback_probe: Some(false),
                trace: Default::default(),
                faults: None,
            },
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--emit-default") {
        println!(
            "{}",
            serde_json::to_string_pretty(&Scenario::default_scenario())
                .expect("default scenario serialises")
        );
        return;
    }
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: scenario <file.json> [--json] | scenario --emit-default");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let scenario: Scenario = match serde_json::from_str(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid scenario file {path}: {e}");
            std::process::exit(2);
        }
    };
    let metrics = match run_link(&scenario.link, &scenario.spec, LinkRun::new()) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("invalid link configuration: {e}");
            std::process::exit(2);
        }
    };
    if args.iter().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&metrics).expect("metrics serialise")
        );
        return;
    }
    let fs = scenario.link.phy.sample_rate_hz;
    println!("scenario        : {path}");
    println!(
        "link            : d_devices = {} m, source {} dBm at {} m, {:?}",
        scenario.link.geometry.device_dist_m,
        scenario.link.geometry.source_power_dbm,
        scenario.link.geometry.source_dist_b_m,
        scenario.link.ambient,
    );
    println!(
        "PHY             : {} bps data, m = {}, {:?}",
        scenario.link.phy.data_rate_bps(),
        scenario.link.phy.feedback_ratio,
        scenario.link.phy.line_code
    );
    println!("frames          : {}", metrics.frames);
    println!("lock rate       : {:.3}", metrics.lock_rate());
    println!("delivery rate   : {:.3}", metrics.delivery_rate());
    println!(
        "data BER        : {:.3e} over {} bits",
        metrics.data_ber.ber(),
        metrics.data_ber.bits()
    );
    if metrics.feedback_ber.bits() > 0 {
        println!(
            "feedback BER    : {:.3e} over {} bits",
            metrics.feedback_ber.ber(),
            metrics.feedback_ber.bits()
        );
    }
    println!(
        "block success   : {:.3} ({}/{})",
        metrics.block_success_rate(),
        metrics.blocks_ok,
        metrics.blocks_total
    );
    println!(
        "airtime         : {:.2} s simulated",
        metrics.airtime_samples as f64 / fs
    );
    println!(
        "energy          : A {:.2} µJ, B {:.2} µJ, B harvested {:.3} µJ",
        metrics.energy_a_j * 1e6,
        metrics.energy_b_j * 1e6,
        metrics.harvested_b_j * 1e6
    );
}
