//! # fdb-mac — link layer over the full-duplex backscatter PHY
//!
//! The HotNets 2013 design's payoff lives here: what a link layer can do
//! once the receiver can talk back *during* a frame.
//!
//! Two tiers of fidelity, each used where it is honest:
//!
//! * **PHY-backed protocols** ([`arq`], [`early_abort`]) run real frames
//!   through `fdb_core::FdLink`, sample by sample. They are the ground
//!   truth for goodput/energy comparisons (experiments E4, E5).
//! * **Event-level models** ([`csma`], [`flow`]) simulate many nodes and
//!   long horizons at bit granularity, with their key latency parameters
//!   (pilot detection delay, feedback latency) taken from the PHY
//!   configuration and validated against sample-level runs in the
//!   integration tests (experiment E6 and the flow-control study).
//!
//! [`rate_adapt`] provides the AIMD-style controller the rate-adaptation
//! experiment (E7) drives against PHY-backed frames, and [`selective`]
//! extends early abort with resume-from-failed-block partial
//! retransmission (the NACK's *timing* identifies the broken block).
//!
//! [`scenario`] closes the loop: a multi-frame session engine that runs
//! rate adaptation, early abort, and flow control end-to-end over a real
//! `FdLink` under injected faults, with every decision driven only by
//! transmitter-observable feedback.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod arq;
pub mod csma;
pub mod duty;
pub mod early_abort;
pub mod flow;
pub mod rate_adapt;
pub mod report;
pub mod scenario;
pub mod selective;
pub mod stream;

pub use arq::StopAndWait;
pub use early_abort::EarlyAbortArq;
pub use report::TransferReport;
pub use scenario::{AdaptationReport, FlowModel, FrameRecord, RatePolicy, SessionConfig};
pub use selective::ResumeArq;
pub use stream::StreamSession;
