//! Common result types for MAC-level transfers.

use serde::{Deserialize, Serialize};

/// Outcome of transferring one payload through a retransmission protocol.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TransferReport {
    /// Whether the payload was eventually delivered intact.
    pub delivered: bool,
    /// Data-frame transmissions attempted (including the first).
    pub frames_sent: u32,
    /// Frames that were aborted mid-air by feedback.
    pub aborts: u32,
    /// ACK/control frames sent on the reverse channel (half-duplex only).
    pub ack_frames_sent: u32,
    /// Total channel occupancy in samples (all frames, both directions).
    pub channel_samples: u64,
    /// Simulated wall-clock samples including turnarounds.
    pub elapsed_samples: u64,
    /// Payload size in bytes.
    pub payload_bytes: usize,
    /// Energy consumed by the initiating device (J).
    pub energy_a_j: f64,
    /// Energy consumed by the responding device (J).
    pub energy_b_j: f64,
}

impl TransferReport {
    /// Goodput in bits per second at the given sample rate. Zero when the
    /// transfer failed or took no time.
    pub fn goodput_bps(&self, sample_rate_hz: f64) -> f64 {
        if !self.delivered || self.elapsed_samples == 0 {
            return 0.0;
        }
        let secs = self.elapsed_samples as f64 / sample_rate_hz;
        (self.payload_bytes * 8) as f64 / secs
    }

    /// Total device energy per delivered payload bit (J/bit); infinite when
    /// nothing was delivered.
    pub fn energy_per_bit_j(&self) -> f64 {
        if !self.delivered || self.payload_bytes == 0 {
            return f64::INFINITY;
        }
        (self.energy_a_j + self.energy_b_j) / (self.payload_bytes * 8) as f64
    }

    /// Merges another transfer into an aggregate (for multi-payload runs).
    pub fn accumulate(&mut self, other: &TransferReport) {
        self.delivered &= other.delivered;
        self.frames_sent += other.frames_sent;
        self.aborts += other.aborts;
        self.ack_frames_sent += other.ack_frames_sent;
        self.channel_samples += other.channel_samples;
        self.elapsed_samples += other.elapsed_samples;
        self.payload_bytes += other.payload_bytes;
        self.energy_a_j += other.energy_a_j;
        self.energy_b_j += other.energy_b_j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_arithmetic() {
        let r = TransferReport {
            delivered: true,
            payload_bytes: 125, // 1000 bits
            elapsed_samples: 20_000,
            ..Default::default()
        };
        // 20 000 samples at 20 kHz = 1 s → 1000 bps.
        assert!((r.goodput_bps(20_000.0) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn failed_transfer_zero_goodput_infinite_energy() {
        let r = TransferReport {
            delivered: false,
            payload_bytes: 100,
            elapsed_samples: 1000,
            energy_a_j: 1e-6,
            ..Default::default()
        };
        assert_eq!(r.goodput_bps(20_000.0), 0.0);
        assert!(r.energy_per_bit_j().is_infinite());
    }

    #[test]
    fn accumulate_sums_and_ands() {
        let mut a = TransferReport {
            delivered: true,
            frames_sent: 2,
            payload_bytes: 10,
            elapsed_samples: 100,
            ..Default::default()
        };
        let b = TransferReport {
            delivered: false,
            frames_sent: 3,
            payload_bytes: 20,
            elapsed_samples: 300,
            ..Default::default()
        };
        a.accumulate(&b);
        assert!(!a.delivered);
        assert_eq!(a.frames_sent, 5);
        assert_eq!(a.payload_bytes, 30);
        assert_eq!(a.elapsed_samples, 400);
    }

    #[test]
    fn energy_per_bit() {
        let r = TransferReport {
            delivered: true,
            payload_bytes: 1,
            energy_a_j: 4e-9,
            energy_b_j: 4e-9,
            ..Default::default()
        };
        assert!((r.energy_per_bit_j() - 1e-9).abs() < 1e-18);
    }
}
