//! Flow control: in-band backpressure vs overflow-and-retransmit.
//!
//! A battery-free receiver's buffer is tiny and its processing budget
//! fluctuates with harvested energy. Without feedback, a sender discovers
//! overflow only by losing blocks and retransmitting them a full round-trip
//! later. With the full-duplex feedback channel the receiver streams a
//! *busy* bit; the sender reacts within one feedback bit.
//!
//! Event-level model at block granularity: the sender streams fixed-size
//! blocks; the receiver enqueues each block and drains at a (configurable)
//! service rate. Mode differences:
//!
//! * `FdBackpressure` — receiver raises *busy* when the buffer crosses the
//!   high watermark; the sender sees it `feedback_latency_blocks` later and
//!   pauses until *clear* (lowered at the low watermark, same latency).
//! * `OverflowRetransmit` — no in-flight signal; blocks arriving at a full
//!   buffer are dropped, and the sender must re-send them in a later pass
//!   (each pass costs the blocks sent plus a round-trip gap).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Flow-control strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowMode {
    /// Full-duplex in-band backpressure.
    FdBackpressure,
    /// Half-duplex: drop on overflow, retransmit in later passes.
    OverflowRetransmit,
}

/// Flow-control simulation parameters (block granularity).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Total blocks the sender must deliver.
    pub total_blocks: u64,
    /// Receiver buffer capacity in blocks.
    pub buffer_blocks: u64,
    /// Mean blocks the receiver drains per block-time (service ratio; < 1
    /// means the sender is faster than the receiver).
    pub drain_ratio: f64,
    /// Jitter on the drain process: per block-time the receiver stalls with
    /// this probability (energy dips, competing work).
    pub stall_probability: f64,
    /// Feedback latency in block-times (≈ m data bits / block bits).
    pub feedback_latency_blocks: u64,
    /// High watermark (busy asserted at/above), blocks.
    pub high_watermark: u64,
    /// Low watermark (busy cleared at/below), blocks.
    pub low_watermark: u64,
    /// Round-trip gap between retransmission passes, block-times.
    pub retransmit_gap_blocks: u64,
    /// Strategy.
    pub mode: FlowMode,
}

impl FlowConfig {
    /// A default under-provisioned receiver (drains at 70 % of line rate).
    pub fn default_with(mode: FlowMode) -> Self {
        FlowConfig {
            total_blocks: 2_000,
            buffer_blocks: 8,
            drain_ratio: 0.7,
            stall_probability: 0.05,
            feedback_latency_blocks: 2,
            high_watermark: 6,
            low_watermark: 3,
            retransmit_gap_blocks: 40,
            mode,
        }
    }
}

/// Results of one flow-control run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct FlowReport {
    /// Blocks delivered into the receiver's buffer (exactly once each).
    pub delivered: u64,
    /// Block transmissions that were dropped at a full buffer.
    pub dropped: u64,
    /// Total block transmissions (including retransmissions).
    pub transmissions: u64,
    /// Block-times the sender spent paused by backpressure.
    pub paused_time: u64,
    /// Total elapsed block-times until everything was delivered.
    pub elapsed: u64,
}

impl FlowReport {
    /// Effective goodput as a fraction of line rate.
    pub fn goodput_fraction(&self) -> f64 {
        if self.elapsed == 0 {
            0.0
        } else {
            self.delivered as f64 / self.elapsed as f64
        }
    }

    /// Wasted transmissions per delivered block.
    pub fn retransmit_overhead(&self) -> f64 {
        if self.delivered == 0 {
            return f64::INFINITY;
        }
        (self.transmissions as f64 - self.delivered as f64) / self.delivered as f64
    }
}

/// The receiver side of one block-time: drain (unless stalled), update the
/// busy watermark state and advance the sender's delayed view of it.
/// Returns what the sender sees this block-time.
struct Receiver {
    buffer: u64,
    drain_credit: f64,
    busy_asserted: bool,
    busy_pipe: std::collections::VecDeque<bool>,
}

impl Receiver {
    fn new(cfg: &FlowConfig) -> Self {
        Receiver {
            buffer: 0,
            drain_credit: 0.0,
            busy_asserted: false,
            // The sender's delayed view of the busy bit: a tiny delay line.
            busy_pipe: std::collections::VecDeque::from(vec![
                false;
                cfg.feedback_latency_blocks as usize + 1
            ]),
        }
    }

    fn tick<R: Rng + ?Sized>(&mut self, cfg: &FlowConfig, rng: &mut R) -> bool {
        if rng.gen_range(0.0..1.0) >= cfg.stall_probability {
            self.drain_credit += cfg.drain_ratio;
            while self.drain_credit >= 1.0 && self.buffer > 0 {
                self.buffer -= 1;
                self.drain_credit -= 1.0;
            }
            self.drain_credit = self.drain_credit.min(4.0);
        }
        if self.buffer >= cfg.high_watermark {
            self.busy_asserted = true;
        } else if self.buffer <= cfg.low_watermark {
            self.busy_asserted = false;
        }
        self.busy_pipe.push_back(self.busy_asserted);
        self.busy_pipe.pop_front().unwrap_or(false)
    }
}

/// Runs the flow-control model.
pub fn run<R: Rng + ?Sized>(cfg: &FlowConfig, rng: &mut R) -> FlowReport {
    let mut report = FlowReport::default();
    let mut rx = Receiver::new(cfg);
    // Blocks that still need their *first* successful delivery, plus, for
    // the overflow mode, the set dropped in the current pass.
    let mut remaining = cfg.total_blocks;
    let mut pass_backlog: u64 = 0;
    let mut t: u64 = 0;
    let hard_stop = cfg.total_blocks * 200 + 10_000;

    while remaining > 0 && t < hard_stop {
        t += 1;
        let sender_sees_busy = rx.tick(cfg, rng);

        match cfg.mode {
            FlowMode::FdBackpressure => {
                if sender_sees_busy {
                    report.paused_time += 1;
                } else {
                    report.transmissions += 1;
                    if rx.buffer < cfg.buffer_blocks {
                        rx.buffer += 1;
                        report.delivered += 1;
                        remaining -= 1;
                    } else {
                        // Busy signal was late; block lost, retry later.
                        report.dropped += 1;
                    }
                }
            }
            FlowMode::OverflowRetransmit => {
                // Sender streams blindly through the current pass.
                if pass_backlog == 0 && remaining > 0 {
                    // Start a pass over everything still missing. The
                    // learn-and-turnaround gap is simulated tick-by-tick:
                    // the receiver keeps draining (and stalling) through
                    // the sender's silence, so a new pass starts against
                    // whatever the receiver actually worked off — not
                    // against the spuriously full buffer a bare
                    // `t += gap` time-skip used to leave behind.
                    pass_backlog = remaining;
                    for _ in 0..cfg.retransmit_gap_blocks {
                        t += 1;
                        rx.tick(cfg, rng);
                    }
                }
                if pass_backlog > 0 {
                    report.transmissions += 1;
                    pass_backlog -= 1;
                    if rx.buffer < cfg.buffer_blocks {
                        rx.buffer += 1;
                        report.delivered += 1;
                        remaining -= 1;
                    } else {
                        report.dropped += 1;
                    }
                }
            }
        }
    }
    report.elapsed = t;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn everything_delivers_eventually() {
        let mut rng = ChaCha8Rng::seed_from_u64(400);
        for mode in [FlowMode::FdBackpressure, FlowMode::OverflowRetransmit] {
            let cfg = FlowConfig::default_with(mode);
            let r = run(&cfg, &mut rng);
            assert_eq!(r.delivered, cfg.total_blocks, "{mode:?}");
        }
    }

    #[test]
    fn backpressure_drops_far_less() {
        let mut rng = ChaCha8Rng::seed_from_u64(401);
        let fd = run(&FlowConfig::default_with(FlowMode::FdBackpressure), &mut rng);
        let hd = run(
            &FlowConfig::default_with(FlowMode::OverflowRetransmit),
            &mut rng,
        );
        assert!(
            fd.retransmit_overhead() < hd.retransmit_overhead() / 2.0,
            "FD overhead {} vs HD {}",
            fd.retransmit_overhead(),
            hd.retransmit_overhead()
        );
    }

    #[test]
    fn fast_receiver_needs_no_backpressure() {
        let mut rng = ChaCha8Rng::seed_from_u64(402);
        let mut cfg = FlowConfig::default_with(FlowMode::FdBackpressure);
        cfg.drain_ratio = 1.5;
        cfg.stall_probability = 0.0;
        let r = run(&cfg, &mut rng);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.paused_time, 0, "paused although receiver keeps up");
        assert!((r.goodput_fraction() - 1.0).abs() < 0.05);
    }

    #[test]
    fn higher_latency_causes_more_drops() {
        let mut rng = ChaCha8Rng::seed_from_u64(403);
        let mut quick = FlowConfig::default_with(FlowMode::FdBackpressure);
        quick.feedback_latency_blocks = 1;
        let mut slow = quick;
        slow.feedback_latency_blocks = 12;
        // With high latency the busy bit arrives too late more often.
        let r_quick = run(&quick, &mut rng);
        let r_slow = run(&slow, &mut rng);
        assert!(
            r_slow.dropped >= r_quick.dropped,
            "drops: slow {} vs quick {}",
            r_slow.dropped,
            r_quick.dropped
        );
    }

    #[test]
    fn retransmit_gap_drains_receiver() {
        // Regression for the `t += retransmit_gap_blocks` time-skip: the
        // receiver neither drained nor stalled during the skipped
        // block-times, so every pass after the first started against a
        // spuriously full buffer. With stall_probability = 0 the model is
        // fully deterministic; drain_ratio · gap ≥ buffer_blocks
        // guarantees the buffer empties during each gap, so the first
        // `buffer_blocks` transmissions of every pass must land.
        let cfg = FlowConfig {
            total_blocks: 40,
            buffer_blocks: 4,
            drain_ratio: 0.5,
            stall_probability: 0.0,
            feedback_latency_blocks: 2,
            high_watermark: 3,
            low_watermark: 1,
            retransmit_gap_blocks: 16,
            mode: FlowMode::OverflowRetransmit,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(405);
        let hd = run(&cfg, &mut rng);
        assert_eq!(hd.delivered, cfg.total_blocks);
        // Pinned corrected trajectory (the buggy time-skip produced more
        // drops / transmissions because pass 2+ opened at a full buffer).
        assert_eq!(
            (hd.dropped, hd.transmissions, hd.elapsed),
            (13, 53, 85),
            "overflow pass accounting moved: dropped {} tx {} elapsed {}",
            hd.dropped,
            hd.transmissions,
            hd.elapsed
        );
        // Corrected goodput ordering: even with the baseline no longer
        // handicapped by phantom-full buffers, FD backpressure still wins.
        let fd = run(
            &FlowConfig {
                mode: FlowMode::FdBackpressure,
                ..cfg
            },
            &mut rng,
        );
        assert_eq!(fd.delivered, cfg.total_blocks);
        assert!(
            fd.goodput_fraction() > hd.goodput_fraction(),
            "FD {} vs corrected HD {}",
            fd.goodput_fraction(),
            hd.goodput_fraction()
        );
    }

    #[test]
    fn goodput_bounded_by_drain_ratio() {
        let mut rng = ChaCha8Rng::seed_from_u64(404);
        let cfg = FlowConfig::default_with(FlowMode::FdBackpressure);
        let r = run(&cfg, &mut rng);
        // Steady-state delivery cannot exceed the receiver's drain rate
        // (plus the initial buffer fill).
        assert!(
            r.goodput_fraction() < cfg.drain_ratio * (1.0 - cfg.stall_probability) + 0.1,
            "goodput {}",
            r.goodput_fraction()
        );
    }
}
