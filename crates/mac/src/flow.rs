//! Flow control: in-band backpressure vs overflow-and-retransmit.
//!
//! A battery-free receiver's buffer is tiny and its processing budget
//! fluctuates with harvested energy. Without feedback, a sender discovers
//! overflow only by losing blocks and retransmitting them a full round-trip
//! later. With the full-duplex feedback channel the receiver streams a
//! *busy* bit; the sender reacts within one feedback bit.
//!
//! Event-level model at block granularity: the sender streams fixed-size
//! blocks; the receiver enqueues each block and drains at a (configurable)
//! service rate. Mode differences:
//!
//! * `FdBackpressure` — receiver raises *busy* when the buffer crosses the
//!   high watermark; the sender sees it `feedback_latency_blocks` later and
//!   pauses until *clear* (lowered at the low watermark, same latency).
//! * `OverflowRetransmit` — no in-flight signal; blocks arriving at a full
//!   buffer are dropped, and the sender must re-send them in a later pass
//!   (each pass costs the blocks sent plus a round-trip gap).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Flow-control strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowMode {
    /// Full-duplex in-band backpressure.
    FdBackpressure,
    /// Half-duplex: drop on overflow, retransmit in later passes.
    OverflowRetransmit,
}

/// Flow-control simulation parameters (block granularity).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Total blocks the sender must deliver.
    pub total_blocks: u64,
    /// Receiver buffer capacity in blocks.
    pub buffer_blocks: u64,
    /// Mean blocks the receiver drains per block-time (service ratio; < 1
    /// means the sender is faster than the receiver).
    pub drain_ratio: f64,
    /// Jitter on the drain process: per block-time the receiver stalls with
    /// this probability (energy dips, competing work).
    pub stall_probability: f64,
    /// Feedback latency in block-times (≈ m data bits / block bits).
    pub feedback_latency_blocks: u64,
    /// High watermark (busy asserted at/above), blocks.
    pub high_watermark: u64,
    /// Low watermark (busy cleared at/below), blocks.
    pub low_watermark: u64,
    /// Round-trip gap between retransmission passes, block-times.
    pub retransmit_gap_blocks: u64,
    /// Strategy.
    pub mode: FlowMode,
}

impl FlowConfig {
    /// A default under-provisioned receiver (drains at 70 % of line rate).
    pub fn default_with(mode: FlowMode) -> Self {
        FlowConfig {
            total_blocks: 2_000,
            buffer_blocks: 8,
            drain_ratio: 0.7,
            stall_probability: 0.05,
            feedback_latency_blocks: 2,
            high_watermark: 6,
            low_watermark: 3,
            retransmit_gap_blocks: 40,
            mode,
        }
    }
}

/// Results of one flow-control run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct FlowReport {
    /// Blocks delivered into the receiver's buffer (exactly once each).
    pub delivered: u64,
    /// Block transmissions that were dropped at a full buffer.
    pub dropped: u64,
    /// Total block transmissions (including retransmissions).
    pub transmissions: u64,
    /// Block-times the sender spent paused by backpressure.
    pub paused_time: u64,
    /// Total elapsed block-times until everything was delivered.
    pub elapsed: u64,
}

impl FlowReport {
    /// Effective goodput as a fraction of line rate.
    pub fn goodput_fraction(&self) -> f64 {
        if self.elapsed == 0 {
            0.0
        } else {
            self.delivered as f64 / self.elapsed as f64
        }
    }

    /// Wasted transmissions per delivered block.
    pub fn retransmit_overhead(&self) -> f64 {
        if self.delivered == 0 {
            return f64::INFINITY;
        }
        (self.transmissions as f64 - self.delivered as f64) / self.delivered as f64
    }
}

/// Runs the flow-control model.
pub fn run<R: Rng + ?Sized>(cfg: &FlowConfig, rng: &mut R) -> FlowReport {
    let mut report = FlowReport::default();
    let mut buffer: u64 = 0;
    let mut drain_credit = 0.0;
    let mut busy_asserted = false;
    // The sender's delayed view of the busy bit: a tiny delay line.
    let latency = cfg.feedback_latency_blocks as usize;
    let mut busy_pipe = std::collections::VecDeque::from(vec![false; latency + 1]);
    // Blocks that still need their *first* successful delivery, plus, for
    // the overflow mode, the set dropped in the current pass.
    let mut remaining = cfg.total_blocks;
    let mut pass_backlog: u64 = 0;
    let mut t: u64 = 0;
    let hard_stop = cfg.total_blocks * 200 + 10_000;

    while remaining > 0 && t < hard_stop {
        t += 1;
        // Receiver drains.
        if rng.gen_range(0.0..1.0) >= cfg.stall_probability {
            drain_credit += cfg.drain_ratio;
            while drain_credit >= 1.0 && buffer > 0 {
                buffer -= 1;
                drain_credit -= 1.0;
            }
            drain_credit = drain_credit.min(4.0);
        }
        // Receiver updates busy.
        if buffer >= cfg.high_watermark {
            busy_asserted = true;
        } else if buffer <= cfg.low_watermark {
            busy_asserted = false;
        }
        busy_pipe.push_back(busy_asserted);
        let sender_sees_busy = busy_pipe.pop_front().unwrap_or(false);

        match cfg.mode {
            FlowMode::FdBackpressure => {
                if sender_sees_busy {
                    report.paused_time += 1;
                } else {
                    report.transmissions += 1;
                    if buffer < cfg.buffer_blocks {
                        buffer += 1;
                        report.delivered += 1;
                        remaining -= 1;
                    } else {
                        // Busy signal was late; block lost, retry later.
                        report.dropped += 1;
                    }
                }
            }
            FlowMode::OverflowRetransmit => {
                // Sender streams blindly through the current pass.
                if pass_backlog == 0 && remaining > 0 {
                    // Start a pass over everything still missing.
                    pass_backlog = remaining;
                    t += cfg.retransmit_gap_blocks; // learn-and-turnaround
                }
                if pass_backlog > 0 {
                    report.transmissions += 1;
                    pass_backlog -= 1;
                    if buffer < cfg.buffer_blocks {
                        buffer += 1;
                        report.delivered += 1;
                        remaining -= 1;
                    } else {
                        report.dropped += 1;
                    }
                }
            }
        }
    }
    report.elapsed = t;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn everything_delivers_eventually() {
        let mut rng = ChaCha8Rng::seed_from_u64(400);
        for mode in [FlowMode::FdBackpressure, FlowMode::OverflowRetransmit] {
            let cfg = FlowConfig::default_with(mode);
            let r = run(&cfg, &mut rng);
            assert_eq!(r.delivered, cfg.total_blocks, "{mode:?}");
        }
    }

    #[test]
    fn backpressure_drops_far_less() {
        let mut rng = ChaCha8Rng::seed_from_u64(401);
        let fd = run(&FlowConfig::default_with(FlowMode::FdBackpressure), &mut rng);
        let hd = run(
            &FlowConfig::default_with(FlowMode::OverflowRetransmit),
            &mut rng,
        );
        assert!(
            fd.retransmit_overhead() < hd.retransmit_overhead() / 2.0,
            "FD overhead {} vs HD {}",
            fd.retransmit_overhead(),
            hd.retransmit_overhead()
        );
    }

    #[test]
    fn fast_receiver_needs_no_backpressure() {
        let mut rng = ChaCha8Rng::seed_from_u64(402);
        let mut cfg = FlowConfig::default_with(FlowMode::FdBackpressure);
        cfg.drain_ratio = 1.5;
        cfg.stall_probability = 0.0;
        let r = run(&cfg, &mut rng);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.paused_time, 0, "paused although receiver keeps up");
        assert!((r.goodput_fraction() - 1.0).abs() < 0.05);
    }

    #[test]
    fn higher_latency_causes_more_drops() {
        let mut rng = ChaCha8Rng::seed_from_u64(403);
        let mut quick = FlowConfig::default_with(FlowMode::FdBackpressure);
        quick.feedback_latency_blocks = 1;
        let mut slow = quick;
        slow.feedback_latency_blocks = 12;
        // With high latency the busy bit arrives too late more often.
        let r_quick = run(&quick, &mut rng);
        let r_slow = run(&slow, &mut rng);
        assert!(
            r_slow.dropped >= r_quick.dropped,
            "drops: slow {} vs quick {}",
            r_slow.dropped,
            r_quick.dropped
        );
    }

    #[test]
    fn goodput_bounded_by_drain_ratio() {
        let mut rng = ChaCha8Rng::seed_from_u64(404);
        let cfg = FlowConfig::default_with(FlowMode::FdBackpressure);
        let r = run(&cfg, &mut rng);
        // Steady-state delivery cannot exceed the receiver's drain rate
        // (plus the initial buffer fill).
        assert!(
            r.goodput_fraction() < cfg.drain_ratio * (1.0 - cfg.stall_probability) + 0.1,
            "goodput {}",
            r.goodput_fraction()
        );
    }
}
