//! Stop-and-wait packet ARQ — the half-duplex baseline.
//!
//! The protocol every pre-full-duplex backscatter link runs: send the whole
//! frame, turn the link around, wait for an explicit ACK frame, retransmit
//! everything on a missing/negative ACK. Both directions are *real*
//! sample-level frames through `fdb_core::FdLink` (the reverse link swaps
//! the devices' roles), so ACK loss, turnaround airtime and reverse-link
//! errors all cost what they physically cost.

use crate::report::TransferReport;
use fdb_core::link::{FdLink, LinkConfig, RunOptions};
use fdb_core::PhyError;
use rand::Rng;

/// Stop-and-wait configuration.
#[derive(Debug, Clone, Copy)]
pub struct ArqConfig {
    /// Maximum data-frame transmissions before giving up.
    pub max_attempts: u32,
    /// ACK frame payload size in bytes (sequence number + verdict).
    pub ack_payload_bytes: usize,
    /// Turnaround gap between data frame end and ACK start, in samples
    /// (device settling + scheduling).
    pub turnaround_samples: u64,
}

impl Default for ArqConfig {
    fn default() -> Self {
        ArqConfig {
            max_attempts: 8,
            ack_payload_bytes: 2,
            turnaround_samples: 400,
        }
    }
}

/// A stop-and-wait session over a pair of directional links.
pub struct StopAndWait {
    forward: FdLink,
    reverse: FdLink,
    cfg: ArqConfig,
}

impl StopAndWait {
    /// Builds the session. The reverse link mirrors the forward geometry
    /// with device roles (and their tag hardware) swapped.
    pub fn new<R: Rng + ?Sized>(
        link_cfg: LinkConfig,
        cfg: ArqConfig,
        rng: &mut R,
    ) -> Result<Self, PhyError> {
        let mut rev_cfg = link_cfg.clone();
        rev_cfg.geometry = rev_cfg.geometry.swapped();
        std::mem::swap(&mut rev_cfg.tag_a, &mut rev_cfg.tag_b);
        Ok(StopAndWait {
            forward: FdLink::new(link_cfg, rng)?,
            reverse: FdLink::new(rev_cfg, rng)?,
            cfg,
        })
    }

    /// Transfers one payload, retransmitting until ACKed or attempts are
    /// exhausted.
    pub fn transfer<R: Rng + ?Sized>(
        &mut self,
        payload: &[u8],
        rng: &mut R,
    ) -> Result<TransferReport, PhyError> {
        let mut report = TransferReport {
            payload_bytes: payload.len(),
            ..Default::default()
        };
        let ack_payload = vec![0xA5u8; self.cfg.ack_payload_bytes.max(1)];
        let mut delivered = false;
        for _attempt in 0..self.cfg.max_attempts {
            // --- data frame (half-duplex: B stays silent) -------------
            let out = self
                .forward
                .run_frame(payload, &RunOptions::half_duplex(), rng)?;
            report.frames_sent += 1;
            report.channel_samples += out.airtime_samples as u64;
            report.elapsed_samples += out.samples_run as u64 + self.cfg.turnaround_samples;
            report.energy_a_j += out.energy.a_consumed_j;
            report.energy_b_j += out.energy.b_consumed_j;
            let frame_ok = out.fully_delivered();

            // --- ACK frame (B → A), sent only when B decoded the frame;
            // a B that failed to even lock sends nothing and A times out.
            let ack_received = if out.b_locked && out.delivered.is_some() {
                let ack = self
                    .reverse
                    .run_frame(&ack_payload, &RunOptions::half_duplex(), rng)?;
                report.ack_frames_sent += 1;
                report.channel_samples += ack.airtime_samples as u64;
                report.elapsed_samples += ack.samples_run as u64 + self.cfg.turnaround_samples;
                // Reverse-link energy: device B transmits, device A receives
                // (roles swapped inside `reverse`).
                report.energy_b_j += ack.energy.a_consumed_j;
                report.energy_a_j += ack.energy.b_consumed_j;
                frame_ok && ack.fully_delivered()
            } else {
                // ACK timeout: A waits one ACK-frame's worth of airtime.
                report.elapsed_samples += self.ack_timeout_samples();
                false
            };

            if ack_received {
                delivered = true;
                break;
            }
        }
        report.delivered = delivered;
        Ok(report)
    }

    fn ack_timeout_samples(&self) -> u64 {
        // Preamble + header + one ACK block, in samples, plus margin.
        let phy = &self.reverse.config().phy;
        let bits = phy.preamble.len()
            + fdb_core::frame::frame_bits_len(phy, self.cfg.ack_payload_bytes.max(1));
        (bits * phy.samples_per_bit()) as u64 + 4 * phy.samples_per_bit() as u64
    }

    /// Access to the forward link (for inspection in experiments).
    pub fn forward(&self) -> &FdLink {
        &self.forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_ambient::AmbientConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn clean_cfg() -> LinkConfig {
        let mut cfg = LinkConfig::default_fd();
        cfg.ambient = AmbientConfig::Cw;
        cfg.field_noise_dbm = -160.0;
        cfg
    }

    fn noisy_cfg(dist: f64) -> LinkConfig {
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = dist;
        cfg
    }

    #[test]
    fn clean_channel_single_attempt() {
        let mut rng = ChaCha8Rng::seed_from_u64(200);
        let mut arq = StopAndWait::new(clean_cfg(), ArqConfig::default(), &mut rng).unwrap();
        let payload: Vec<u8> = (0..32u8).collect();
        let r = arq.transfer(&payload, &mut rng).unwrap();
        assert!(r.delivered);
        assert_eq!(r.frames_sent, 1);
        assert_eq!(r.ack_frames_sent, 1);
        assert!(r.goodput_bps(20_000.0) > 0.0);
    }

    #[test]
    fn hopeless_channel_exhausts_attempts() {
        let mut rng = ChaCha8Rng::seed_from_u64(201);
        // 3 m: far past the cliff — nothing gets through.
        let mut arq = StopAndWait::new(
            noisy_cfg(3.0),
            ArqConfig {
                max_attempts: 3,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let r = arq.transfer(&[1u8; 16], &mut rng).unwrap();
        assert!(!r.delivered);
        assert_eq!(r.frames_sent, 3);
        assert_eq!(r.goodput_bps(20_000.0), 0.0);
    }

    #[test]
    fn lossy_channel_eventually_delivers_with_retries() {
        let mut rng = ChaCha8Rng::seed_from_u64(202);
        // 0.55 m: ~50 % frame loss — retries should succeed.
        let mut arq = StopAndWait::new(
            noisy_cfg(0.55),
            ArqConfig {
                max_attempts: 16,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let mut delivered = 0;
        let mut total_frames = 0;
        for i in 0..5 {
            let payload = vec![i as u8; 48];
            let r = arq.transfer(&payload, &mut rng).unwrap();
            if r.delivered {
                delivered += 1;
            }
            total_frames += r.frames_sent;
        }
        assert!(delivered >= 4, "only {delivered}/5 delivered");
        assert!(total_frames > 5, "expected some retransmissions");
    }

    #[test]
    fn elapsed_includes_turnarounds_and_acks() {
        let mut rng = ChaCha8Rng::seed_from_u64(203);
        let mut arq = StopAndWait::new(
            clean_cfg(),
            ArqConfig {
                turnaround_samples: 1000,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let r = arq.transfer(&[0u8; 16], &mut rng).unwrap();
        assert!(r.elapsed_samples >= r.channel_samples + 2000);
    }
}
