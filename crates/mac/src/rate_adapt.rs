//! In-frame feedback-driven rate adaptation.
//!
//! A backscatter link's usable bit rate falls steeply with device
//! separation (the modulation swing shrinks as d^λ while detector noise is
//! fixed). A fixed-rate deployment must pick its rate for the worst link.
//! The full-duplex feedback channel lets the transmitter adapt *within a
//! handful of frames*: NACK-heavy feedback drops the rate immediately
//! (multiplicative decrease), a streak of clean frames raises it
//! (additive increase).
//!
//! The controller is deliberately tiny — tags don't run Minstrel. Rates
//! are expressed as `samples_per_chip` multipliers over the base PHY
//! config, mirroring how a real tag would slow its chip clock.

use serde::{Deserialize, Serialize};

/// Decision produced after each frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RateDecision {
    /// Stay at the current rate.
    Hold,
    /// Move one step faster.
    Up,
    /// Move one step slower.
    Down,
}

/// AIMD rate controller over a discrete rate ladder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateController {
    /// Rate ladder: samples-per-chip values, fastest (smallest) first.
    ladder: Vec<usize>,
    /// Current index into the ladder.
    idx: usize,
    /// Clean frames required before stepping up.
    up_streak_needed: u32,
    streak: u32,
}

impl RateController {
    /// Creates a controller over the given ladder, starting at the slowest
    /// (most robust) rate. An empty ladder gets a single default entry.
    pub fn new(mut ladder: Vec<usize>, up_streak_needed: u32) -> Self {
        if ladder.is_empty() {
            ladder.push(10);
        }
        ladder.sort_unstable();
        let idx = ladder.len() - 1;
        RateController {
            ladder,
            idx,
            up_streak_needed: up_streak_needed.max(1),
            streak: 0,
        }
    }

    /// The default ladder: 5/10/20/40 samples per chip — 2×, 1×, ½×, ¼×
    /// the base rate.
    pub fn default_ladder() -> Self {
        RateController::new(vec![5, 10, 20, 40], 3)
    }

    /// Current samples-per-chip.
    pub fn current_sps(&self) -> usize {
        self.ladder[self.idx]
    }

    /// Current position (0 = fastest).
    pub fn position(&self) -> usize {
        self.idx
    }

    /// Number of rungs on the ladder.
    pub fn ladder_len(&self) -> usize {
        self.ladder.len()
    }

    /// Feeds one frame outcome: whether the frame delivered cleanly and
    /// the fraction of feedback bits that were NACK.
    pub fn on_frame(&mut self, delivered_clean: bool, nack_fraction: f64) -> RateDecision {
        if !delivered_clean || nack_fraction > 0.2 {
            self.streak = 0;
            if self.idx + 1 < self.ladder.len() {
                self.idx += 1;
                return RateDecision::Down;
            }
            return RateDecision::Hold;
        }
        self.streak += 1;
        if self.streak >= self.up_streak_needed && self.idx > 0 {
            self.streak = 0;
            self.idx -= 1;
            return RateDecision::Up;
        }
        RateDecision::Hold
    }

    /// Resets to the slowest rate (link re-establishment).
    pub fn reset(&mut self) {
        self.idx = self.ladder.len() - 1;
        self.streak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_slowest() {
        let c = RateController::default_ladder();
        assert_eq!(c.current_sps(), 40);
    }

    #[test]
    fn climbs_on_clean_streaks() {
        let mut c = RateController::new(vec![5, 10, 20], 2);
        assert_eq!(c.current_sps(), 20);
        assert_eq!(c.on_frame(true, 0.0), RateDecision::Hold);
        assert_eq!(c.on_frame(true, 0.0), RateDecision::Up);
        assert_eq!(c.current_sps(), 10);
        c.on_frame(true, 0.0);
        assert_eq!(c.on_frame(true, 0.0), RateDecision::Up);
        assert_eq!(c.current_sps(), 5);
        // At the top, holds.
        c.on_frame(true, 0.0);
        assert_eq!(c.on_frame(true, 0.0), RateDecision::Hold);
    }

    #[test]
    fn drops_immediately_on_failure() {
        let mut c = RateController::new(vec![5, 10, 20], 2);
        c.on_frame(true, 0.0);
        c.on_frame(true, 0.0); // now at 10
        assert_eq!(c.on_frame(false, 0.0), RateDecision::Down);
        assert_eq!(c.current_sps(), 20);
    }

    #[test]
    fn heavy_nack_counts_as_failure() {
        let mut c = RateController::new(vec![5, 10], 1);
        c.on_frame(true, 0.0); // → 5
        assert_eq!(c.current_sps(), 5);
        assert_eq!(c.on_frame(true, 0.5), RateDecision::Down);
        assert_eq!(c.current_sps(), 10);
    }

    #[test]
    fn failure_resets_streak() {
        let mut c = RateController::new(vec![5, 10, 20], 3);
        c.on_frame(true, 0.0);
        c.on_frame(true, 0.0);
        c.on_frame(false, 0.0); // bottom already → Hold, streak reset
        assert_eq!(c.current_sps(), 20);
        c.on_frame(true, 0.0);
        c.on_frame(true, 0.0);
        assert_eq!(c.on_frame(true, 0.0), RateDecision::Up);
    }

    #[test]
    fn ladder_sorted_and_nonempty() {
        let c = RateController::new(vec![40, 5, 20], 1);
        assert_eq!(c.current_sps(), 40);
        let c = RateController::new(vec![], 1);
        assert_eq!(c.current_sps(), 10);
        assert_eq!(c.ladder_len(), 1);
    }

    #[test]
    fn reset_returns_to_slowest() {
        let mut c = RateController::new(vec![5, 10, 20], 1);
        c.on_frame(true, 0.0);
        c.on_frame(true, 0.0);
        assert_eq!(c.current_sps(), 5);
        c.reset();
        assert_eq!(c.current_sps(), 20);
    }
}
