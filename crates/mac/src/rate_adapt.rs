//! In-frame feedback-driven rate adaptation.
//!
//! A backscatter link's usable bit rate falls steeply with device
//! separation (the modulation swing shrinks as d^λ while detector noise is
//! fixed). A fixed-rate deployment must pick its rate for the worst link.
//! The full-duplex feedback channel lets the transmitter adapt *within a
//! handful of frames*: NACK-heavy feedback drops the rate immediately
//! (multiplicative decrease), a streak of clean frames raises it
//! (additive increase).
//!
//! The controller is deliberately tiny — tags don't run Minstrel. Rates
//! are expressed as `samples_per_chip` multipliers over the base PHY
//! config, mirroring how a real tag would slow its chip clock.

use serde::{Deserialize, Serialize};

/// Decision produced after each frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RateDecision {
    /// Stay at the current rate.
    Hold,
    /// Move one step faster.
    Up,
    /// Move one step slower.
    Down,
}

/// Serde default for [`RateController::nack_trip`]: the historical 0.2
/// trip point, so controller JSON written before the field existed parses
/// unchanged.
fn default_nack_trip() -> f64 {
    0.2
}

/// AIMD rate controller over a discrete rate ladder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateController {
    /// Rate ladder: samples-per-chip values, fastest (smallest) first.
    ladder: Vec<usize>,
    /// Current index into the ladder.
    idx: usize,
    /// Clean frames required before stepping up.
    up_streak_needed: u32,
    streak: u32,
    /// NACK-fraction trip point: a frame whose decoded feedback carries a
    /// NACK fraction strictly above this counts as a failure even if it
    /// delivered. Formerly a hidden `0.2` constant inside `on_frame`.
    #[serde(default = "default_nack_trip")]
    nack_trip: f64,
}

impl RateController {
    /// Creates a controller over the given ladder, starting at the slowest
    /// (most robust) rate. An empty ladder gets a single default entry.
    pub fn new(mut ladder: Vec<usize>, up_streak_needed: u32) -> Self {
        if ladder.is_empty() {
            ladder.push(10);
        }
        ladder.sort_unstable();
        let idx = ladder.len() - 1;
        RateController {
            ladder,
            idx,
            up_streak_needed: up_streak_needed.max(1),
            streak: 0,
            nack_trip: default_nack_trip(),
        }
    }

    /// Builder-style override of the NACK-fraction trip point (clamped to
    /// `[0, 1]`; non-finite values keep the default).
    pub fn with_nack_trip(mut self, trip: f64) -> Self {
        if trip.is_finite() {
            self.nack_trip = trip.clamp(0.0, 1.0);
        }
        self
    }

    /// The configured NACK-fraction trip point.
    pub fn nack_trip(&self) -> f64 {
        self.nack_trip
    }

    /// The default ladder: 5/10/20/40 samples per chip — 2×, 1×, ½×, ¼×
    /// the base rate.
    pub fn default_ladder() -> Self {
        RateController::new(vec![5, 10, 20, 40], 3)
    }

    /// Current samples-per-chip.
    pub fn current_sps(&self) -> usize {
        self.ladder[self.idx]
    }

    /// Current position (0 = fastest).
    pub fn position(&self) -> usize {
        self.idx
    }

    /// Number of rungs on the ladder.
    pub fn ladder_len(&self) -> usize {
        self.ladder.len()
    }

    /// The slowest (largest samples-per-chip) rung — the rate the
    /// controller starts at and the longest frame a session can emit.
    pub fn slowest_sps(&self) -> usize {
        *self.ladder.last().expect("ladder is never empty")
    }

    /// Feeds one frame outcome: whether the frame delivered cleanly and
    /// the fraction of feedback bits that were NACK.
    ///
    /// `delivered_clean` must be computed from the transmitter's own
    /// observables. In particular, **a frame whose feedback pilot epoch
    /// was never verified must count as not-clean**: without verified
    /// pilots the transmitter has no evidence the receiver locked at all,
    /// and an unverified epoch's decoded "feedback" bits are noise. Use
    /// [`on_frame_observed`](RateController::on_frame_observed) to get
    /// that rule applied for you.
    pub fn on_frame(&mut self, delivered_clean: bool, nack_fraction: f64) -> RateDecision {
        if !delivered_clean || nack_fraction > self.nack_trip {
            self.streak = 0;
            if self.idx + 1 < self.ladder.len() {
                self.idx += 1;
                return RateDecision::Down;
            }
            return RateDecision::Hold;
        }
        self.streak += 1;
        if self.streak >= self.up_streak_needed && self.idx > 0 {
            self.streak = 0;
            self.idx -= 1;
            return RateDecision::Up;
        }
        RateDecision::Hold
    }

    /// Observable-only wrapper around [`on_frame`](RateController::on_frame):
    /// a frame with an unverified pilot epoch counts as not-clean regardless
    /// of what the (noise) feedback bits decoded to.
    pub fn on_frame_observed(
        &mut self,
        pilots_verified: bool,
        believed_clean: bool,
        nack_fraction: f64,
    ) -> RateDecision {
        self.on_frame(pilots_verified && believed_clean, nack_fraction)
    }

    /// Resets to the slowest rate (link re-establishment).
    pub fn reset(&mut self) {
        self.idx = self.ladder.len() - 1;
        self.streak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_slowest() {
        let c = RateController::default_ladder();
        assert_eq!(c.current_sps(), 40);
    }

    #[test]
    fn climbs_on_clean_streaks() {
        let mut c = RateController::new(vec![5, 10, 20], 2);
        assert_eq!(c.current_sps(), 20);
        assert_eq!(c.on_frame(true, 0.0), RateDecision::Hold);
        assert_eq!(c.on_frame(true, 0.0), RateDecision::Up);
        assert_eq!(c.current_sps(), 10);
        c.on_frame(true, 0.0);
        assert_eq!(c.on_frame(true, 0.0), RateDecision::Up);
        assert_eq!(c.current_sps(), 5);
        // At the top, holds.
        c.on_frame(true, 0.0);
        assert_eq!(c.on_frame(true, 0.0), RateDecision::Hold);
    }

    #[test]
    fn drops_immediately_on_failure() {
        let mut c = RateController::new(vec![5, 10, 20], 2);
        c.on_frame(true, 0.0);
        c.on_frame(true, 0.0); // now at 10
        assert_eq!(c.on_frame(false, 0.0), RateDecision::Down);
        assert_eq!(c.current_sps(), 20);
    }

    #[test]
    fn heavy_nack_counts_as_failure() {
        let mut c = RateController::new(vec![5, 10], 1);
        c.on_frame(true, 0.0); // → 5
        assert_eq!(c.current_sps(), 5);
        assert_eq!(c.on_frame(true, 0.5), RateDecision::Down);
        assert_eq!(c.current_sps(), 10);
    }

    #[test]
    fn failure_resets_streak() {
        let mut c = RateController::new(vec![5, 10, 20], 3);
        c.on_frame(true, 0.0);
        c.on_frame(true, 0.0);
        c.on_frame(false, 0.0); // bottom already → Hold, streak reset
        assert_eq!(c.current_sps(), 20);
        c.on_frame(true, 0.0);
        c.on_frame(true, 0.0);
        assert_eq!(c.on_frame(true, 0.0), RateDecision::Up);
    }

    #[test]
    fn ladder_sorted_and_nonempty() {
        let c = RateController::new(vec![40, 5, 20], 1);
        assert_eq!(c.current_sps(), 40);
        let c = RateController::new(vec![], 1);
        assert_eq!(c.current_sps(), 10);
        assert_eq!(c.ladder_len(), 1);
    }

    #[test]
    fn nack_trip_is_configurable() {
        // Trip at 0.5: a 0.4-NACK frame is clean, a 0.6-NACK frame trips.
        let mut c = RateController::new(vec![5, 10], 1).with_nack_trip(0.5);
        assert_eq!(c.nack_trip(), 0.5);
        c.on_frame(true, 0.4); // → 5 (clean despite 0.4 > old default 0.2)
        assert_eq!(c.current_sps(), 5);
        assert_eq!(c.on_frame(true, 0.6), RateDecision::Down);
        assert_eq!(c.current_sps(), 10);
        // Non-finite and out-of-range inputs are sanitised.
        assert_eq!(
            RateController::new(vec![5], 1).with_nack_trip(f64::NAN).nack_trip(),
            0.2
        );
        assert_eq!(
            RateController::new(vec![5], 1).with_nack_trip(7.0).nack_trip(),
            1.0
        );
    }

    #[test]
    fn legacy_json_without_trip_gets_default() {
        // Controller JSON from before the field existed must parse and
        // behave exactly as the old hidden 0.2 constant did.
        let json = r#"{"ladder":[5,10,20],"idx":2,"up_streak_needed":2,"streak":0}"#;
        let mut c: RateController = serde_json::from_str(json).unwrap();
        assert_eq!(c.nack_trip(), 0.2);
        c.on_frame(true, 0.0);
        c.on_frame(true, 0.0); // → 10
        assert_eq!(c.current_sps(), 10);
        assert_eq!(c.on_frame(true, 0.21), RateDecision::Down);
    }

    #[test]
    fn unverified_pilots_count_as_not_clean() {
        let mut c = RateController::new(vec![5, 10, 20], 2);
        c.on_frame(true, 0.0);
        c.on_frame(true, 0.0); // → 10
        assert_eq!(c.current_sps(), 10);
        // Feedback decoded as all-ACK, but the pilot epoch never verified:
        // the "feedback" is noise and the frame must count as a failure.
        assert_eq!(c.on_frame_observed(false, true, 0.0), RateDecision::Down);
        assert_eq!(c.current_sps(), 20);
        // With pilots verified the same inputs are a clean frame.
        c.on_frame_observed(true, true, 0.0);
        assert_eq!(c.on_frame_observed(true, true, 0.0), RateDecision::Up);
    }

    #[test]
    fn reset_returns_to_slowest() {
        let mut c = RateController::new(vec![5, 10, 20], 1);
        c.on_frame(true, 0.0);
        c.on_frame(true, 0.0);
        assert_eq!(c.current_sps(), 5);
        c.reset();
        assert_eq!(c.current_sps(), 20);
    }
}
