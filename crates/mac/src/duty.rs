//! Energy-neutral duty cycling: living off the harvest.
//!
//! A battery-free sensor far from the ambient source cannot run
//! continuously; it banks harvested energy during sleep and spends a burst
//! of it per transfer. This controller implements the standard
//! charge-and-fire policy with hysteresis:
//!
//! * **Sleep** while stored energy is below the wake threshold; only the
//!   sleep load drains (and harvesting income accrues).
//! * **Fire** one transfer when the bank clears the threshold; the
//!   transfer's measured energy is drawn from the bank.
//! * The controller adapts its wake threshold to the measured per-transfer
//!   cost (EWMA) plus a safety factor, so estimation errors don't brown
//!   the tag out mid-frame.
//!
//! The long-run sustainable throughput is income-limited:
//! `goodput → payload_bits · P_harvest / E_transfer` — experiment E13
//! measures exactly that rollover against source distance.

use serde::{Deserialize, Serialize};

/// Duty-cycling policy configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DutyConfig {
    /// Sleep-state load in watts (RTC + leakage).
    pub sleep_load_w: f64,
    /// Initial estimate of one transfer's energy cost (joules).
    pub initial_cost_estimate_j: f64,
    /// Safety factor on the cost estimate for the wake threshold (≥ 1).
    pub safety_factor: f64,
    /// EWMA smoothing for the measured cost (0–1].
    pub cost_alpha: f64,
    /// Storage capacity in joules (bank is clamped to it).
    pub storage_j: f64,
}

impl Default for DutyConfig {
    fn default() -> Self {
        DutyConfig {
            sleep_load_w: 50e-9,
            initial_cost_estimate_j: 50e-6,
            safety_factor: 1.5,
            cost_alpha: 0.3,
            storage_j: 200e-6,
        }
    }
}

/// Charge-and-fire duty-cycle controller.
#[derive(Debug, Clone, Copy)]
pub struct DutyCycleController {
    cfg: DutyConfig,
    stored_j: f64,
    cost_estimate_j: f64,
    /// Accumulated statistics.
    slept_s: f64,
    fired: u64,
    browned_out: u64,
    harvested_j: f64,
    spent_j: f64,
}

impl DutyCycleController {
    /// Creates a controller with an empty bank.
    pub fn new(cfg: DutyConfig) -> Self {
        DutyCycleController {
            stored_j: 0.0,
            cost_estimate_j: cfg.initial_cost_estimate_j.max(1e-12),
            cfg,
            slept_s: 0.0,
            fired: 0,
            browned_out: 0,
            harvested_j: 0.0,
            spent_j: 0.0,
        }
    }

    /// Energy needed before the next transfer may fire.
    pub fn wake_threshold_j(&self) -> f64 {
        (self.cost_estimate_j * self.cfg.safety_factor).min(self.cfg.storage_j)
    }

    /// Current bank level.
    pub fn stored_j(&self) -> f64 {
        self.stored_j
    }

    /// Current per-transfer cost estimate.
    pub fn cost_estimate_j(&self) -> f64 {
        self.cost_estimate_j
    }

    /// Sleeps until the bank reaches the wake threshold at the given
    /// harvesting income. Returns the sleep duration in seconds, or `None`
    /// when the income cannot even cover the sleep load (the tag is dead
    /// at this range).
    pub fn sleep_until_ready(&mut self, income_w: f64) -> Option<f64> {
        let net = income_w - self.cfg.sleep_load_w;
        let deficit = self.wake_threshold_j() - self.stored_j;
        if deficit <= 0.0 {
            return Some(0.0);
        }
        if net <= 0.0 {
            return None;
        }
        let t = deficit / net;
        self.stored_j = (self.stored_j + net * t).min(self.cfg.storage_j);
        self.slept_s += t;
        self.harvested_j += income_w * t;
        self.spent_j += self.cfg.sleep_load_w * t;
        Some(t)
    }

    /// Accrues harvest over a fixed interval without firing — the tag is
    /// parked (carrier-sense deferral, backoff wait) rather than sleeping
    /// toward a threshold. The sleep load drains as usual; the bank is
    /// clamped to `[0, storage_j]`.
    pub fn bank(&mut self, income_w: f64, dt_s: f64) {
        if dt_s <= 0.0 {
            return;
        }
        let net = income_w - self.cfg.sleep_load_w;
        self.stored_j = (self.stored_j + net * dt_s).clamp(0.0, self.cfg.storage_j);
        self.slept_s += dt_s;
        self.harvested_j += income_w * dt_s;
        self.spent_j += self.cfg.sleep_load_w * dt_s;
    }

    /// Records one fired transfer with its measured energy cost and
    /// duration (income continues to accrue during the transfer). Returns
    /// `false` when the bank could not cover the cost (brown-out) — the
    /// transfer is charged anyway (clamped at zero) and the controller
    /// raises its estimate.
    pub fn fire(&mut self, cost_j: f64, duration_s: f64, income_w: f64) -> bool {
        self.fired += 1;
        self.stored_j = (self.stored_j + income_w * duration_s).min(self.cfg.storage_j);
        let ok = self.stored_j >= cost_j;
        self.stored_j = (self.stored_j - cost_j).max(0.0);
        self.cost_estimate_j += self.cfg.cost_alpha * (cost_j - self.cost_estimate_j);
        self.harvested_j += income_w * duration_s;
        self.spent_j += cost_j;
        if !ok {
            self.browned_out += 1;
        }
        ok
    }

    /// Lifetime harvested energy (joules), across sleeps, banked waits and
    /// transfer intervals.
    pub fn harvested_j(&self) -> f64 {
        self.harvested_j
    }

    /// Lifetime spent energy (joules): sleep load plus transfer costs.
    pub fn spent_j(&self) -> f64 {
        self.spent_j
    }

    /// Total time slept (seconds).
    pub fn slept_s(&self) -> f64 {
        self.slept_s
    }

    /// Transfers fired / brown-outs observed.
    pub fn counts(&self) -> (u64, u64) {
        (self.fired, self.browned_out)
    }

    /// The analytic long-run duty cycle at a given income and transfer
    /// power draw: `income / transfer_power`, capped at 1.
    pub fn sustainable_duty(income_w: f64, transfer_power_w: f64) -> f64 {
        if transfer_power_w <= 0.0 {
            1.0
        } else {
            (income_w / transfer_power_w).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> DutyCycleController {
        DutyCycleController::new(DutyConfig::default())
    }

    #[test]
    fn sleeps_exactly_to_threshold() {
        let mut c = ctl();
        let income = 1e-6; // 1 µW
        let t = c.sleep_until_ready(income).unwrap();
        // threshold 75 µJ at net (1 µW − 50 nW) = 0.95 µW → ~78.9 s.
        let expect = 75e-6 / 0.95e-6;
        assert!((t - expect).abs() / expect < 1e-9, "slept {t}");
        assert!((c.stored_j() - c.wake_threshold_j()).abs() < 1e-12);
    }

    #[test]
    fn dead_when_income_below_sleep_load() {
        let mut c = ctl();
        assert!(c.sleep_until_ready(40e-9).is_none());
        assert!(c.sleep_until_ready(50e-9).is_none());
    }

    #[test]
    fn fire_draws_and_adapts_estimate() {
        let mut c = ctl();
        c.sleep_until_ready(1e-6).unwrap();
        let before = c.stored_j();
        assert!(c.fire(60e-6, 1.0, 1e-6));
        assert!((c.stored_j() - (before + 1e-6 - 60e-6)).abs() < 1e-12);
        // Estimate moved toward 60 µJ.
        assert!(c.cost_estimate_j() > 50e-6 && c.cost_estimate_j() < 60e-6);
    }

    #[test]
    fn brown_out_detected_and_estimate_raised() {
        let mut c = ctl();
        // Fire without charging: cost exceeds the (empty) bank.
        assert!(!c.fire(100e-6, 0.5, 0.0));
        assert_eq!(c.counts(), (1, 1));
        assert_eq!(c.stored_j(), 0.0);
        // Threshold rises so the next sleep charges enough.
        assert!(c.wake_threshold_j() > 75e-6);
    }

    #[test]
    fn bank_clamped_at_capacity() {
        let mut c = ctl();
        // Massive income for a long transfer.
        c.fire(0.0, 1e6, 1e-3);
        assert!(c.stored_j() <= DutyConfig::default().storage_j + 1e-18);
    }

    #[test]
    fn energy_ledger_accumulates() {
        let mut c = ctl();
        let income = 1e-6;
        let t = c.sleep_until_ready(income).unwrap();
        c.bank(income, 10.0);
        c.fire(60e-6, 1.0, income);
        let expect_harvest = income * (t + 10.0 + 1.0);
        assert!((c.harvested_j() - expect_harvest).abs() < 1e-15);
        let expect_spent = 50e-9 * (t + 10.0) + 60e-6;
        assert!((c.spent_j() - expect_spent).abs() < 1e-15);
    }

    #[test]
    fn bank_clamps_and_drains() {
        let mut c = ctl();
        // Net-negative income drains toward zero, never below.
        c.bank(0.0, 1e9);
        assert_eq!(c.stored_j(), 0.0);
        // Huge income clamps at capacity.
        c.bank(1e-3, 1e6);
        assert!(c.stored_j() <= DutyConfig::default().storage_j + 1e-18);
    }

    #[test]
    fn sustainable_duty_formula() {
        assert!((DutyCycleController::sustainable_duty(1e-6, 1e-4) - 0.01).abs() < 1e-12);
        assert_eq!(DutyCycleController::sustainable_duty(1.0, 1e-6), 1.0);
        assert_eq!(DutyCycleController::sustainable_duty(0.0, 1e-6), 0.0);
    }

    #[test]
    fn steady_state_duty_matches_formula() {
        // Simulate many cycles; duty = transfer time / total time must
        // approach income / transfer_power.
        let mut c = ctl();
        let income = 2e-6;
        let transfer_power = 100e-6; // 50 µJ per 0.5 s transfer
        let mut active = 0.0;
        let mut total = 0.0;
        for _ in 0..200 {
            let slept = c.sleep_until_ready(income).unwrap();
            total += slept;
            let dur = 0.5;
            c.fire(transfer_power * dur, dur, income);
            active += dur;
            total += dur;
        }
        let duty = active / total;
        let expect = DutyCycleController::sustainable_duty(income, transfer_power);
        assert!(
            (duty - expect).abs() / expect < 0.1,
            "duty {duty} vs {expect}"
        );
    }
}
