//! Resume-from-failed-block ARQ — partial retransmission over the
//! feedback channel.
//!
//! Plain early abort still retransmits the *whole* frame, so for long
//! frames its advantage over stop-and-wait shrinks (both protocols pay
//! `E[attempts]·frame`; see `fdb_analysis::arq`). But the NACK's *timing*
//! carries more information: the first NACK bit tells the transmitter
//! roughly which block died. This protocol aborts, rewinds a configurable
//! safety margin, and retransmits only from the estimated first-failed
//! block onward.
//!
//! The estimate is honest: it is computed purely from the feedback
//! timeline device A observes (NACK sample → data bits in flight one
//! feedback-bit earlier → block index), and a wrong estimate — resuming
//! past a block that actually failed — is caught only by the ground-truth
//! delivery check, exactly as it would bite a real deployment. The rewind
//! margin trades retransmitted bytes against that risk.

use crate::report::TransferReport;
use fdb_core::frame::HEADER_BITS;
use fdb_core::link::{FdLink, FrameOutcome, LinkConfig, RunOptions};
use fdb_core::PhyError;
use rand::Rng;

/// Resume-ARQ configuration.
#[derive(Debug, Clone, Copy)]
pub struct ResumeArqConfig {
    /// Maximum frame transmissions before giving up.
    pub max_attempts: u32,
    /// Gap between attempts, samples.
    pub retry_gap_samples: u64,
    /// Blocks to rewind below the estimated first failure (insurance
    /// against NACK-latency underestimates).
    pub rewind_margin_blocks: usize,
}

impl Default for ResumeArqConfig {
    fn default() -> Self {
        ResumeArqConfig {
            max_attempts: 8,
            retry_gap_samples: 400,
            rewind_margin_blocks: 1,
        }
    }
}

/// Early-abort ARQ with partial retransmission.
pub struct ResumeArq {
    link: FdLink,
    cfg: ResumeArqConfig,
}

impl ResumeArq {
    /// Builds the session.
    pub fn new<R: Rng + ?Sized>(
        link_cfg: LinkConfig,
        cfg: ResumeArqConfig,
        rng: &mut R,
    ) -> Result<Self, PhyError> {
        Ok(ResumeArq {
            link: FdLink::new(link_cfg, rng)?,
            cfg,
        })
    }

    /// Estimates (from A's observables only) a *safe* resume block for the
    /// next attempt, relative to this attempt's own payload.
    ///
    /// The NACK's timestamp only upper-bounds the failure position; what a
    /// safe resume needs is a **lower bound on the healthy prefix**, and
    /// that comes from the last ACK status bit *before* the first NACK: by
    /// sending ACK, B vouched that every block completed one feedback bit
    /// earlier was intact. If the very first status bit is already NACK
    /// (the failure happened during the pilot phase), there is no vouched
    /// prefix and the whole frame must be retransmitted.
    fn estimate_safe_resume_block(&self, out: &FrameOutcome) -> Option<usize> {
        if !out.pilots_verified {
            return None;
        }
        let first_nack_idx = out.feedback.iter().position(|f| !f.bit)?;
        if first_nack_idx == 0 {
            return Some(0);
        }
        let last_ack = &out.feedback[first_nack_idx - 1];
        let phy = &self.link.config().phy;
        let spb = phy.samples_per_bit() as u64;
        // The ACK vouches for blocks completed one feedback bit earlier.
        let known_at = last_ack
            .sample
            .saturating_sub(phy.samples_per_feedback_bit()) as u64;
        let data_bits = (known_at / spb).saturating_sub(phy.preamble.len() as u64);
        let body_bits = data_bits.saturating_sub(HEADER_BITS as u64);
        let block_bits = ((phy.block_len_bytes + 1) * 8) as u64;
        Some((body_bits / block_bits) as usize)
    }

    /// Transfers one payload with early abort + resume.
    pub fn transfer<R: Rng + ?Sized>(
        &mut self,
        payload: &[u8],
        rng: &mut R,
    ) -> Result<TransferReport, PhyError> {
        let block_len = self.link.config().phy.block_len_bytes;
        let n_blocks = payload.len().div_ceil(block_len).max(1);
        let mut delivered_ok = vec![false; n_blocks];
        let mut report = TransferReport {
            payload_bytes: payload.len(),
            ..Default::default()
        };
        let mut resume_from = 0usize; // first original block of this attempt
        let mut believed_complete = false;
        for _ in 0..self.cfg.max_attempts {
            let sub = &payload[(resume_from * block_len).min(payload.len())..];
            let out = self
                .link
                .run_frame(sub, &RunOptions::fd_early_abort(), rng)?;
            report.frames_sent += 1;
            if out.aborted_at_sample.is_some() {
                report.aborts += 1;
            }
            report.channel_samples += out.airtime_samples as u64;
            report.elapsed_samples += out.samples_run as u64 + self.cfg.retry_gap_samples;
            report.energy_a_j += out.energy.a_consumed_j;
            report.energy_b_j += out.energy.b_consumed_j;

            // Ground truth: map this attempt's completed blocks onto
            // original indices — *partial* reception counts: an aborted
            // frame's early blocks arrived before the abort and stay
            // delivered.
            for st in &out.partial_blocks {
                let orig = resume_from + st.index;
                if orig < n_blocks && st.ok {
                    // Verify content, not just CRC: a resumed frame's
                    // block must match the original bytes.
                    let lo = orig * block_len;
                    let hi = (lo + block_len).min(payload.len());
                    let sub_lo = st.index * block_len;
                    let sub_hi = sub_lo + (hi - lo);
                    if out.partial_payload.get(sub_lo..sub_hi) == Some(&payload[lo..hi]) {
                        delivered_ok[orig] = true;
                    }
                }
            }

            // A's protocol decision from its own observables.
            let clean = out.pilots_verified
                && out.aborted_at_sample.is_none()
                && out.feedback.last().map(|f| f.bit).unwrap_or(false);
            if clean {
                believed_complete = true;
                break;
            }
            // Resume point for the next attempt (conservative: the vouched
            // healthy prefix, further rewound by the safety margin).
            if let Some(rel) = self.estimate_safe_resume_block(&out) {
                let jump = rel.saturating_sub(self.cfg.rewind_margin_blocks);
                resume_from = (resume_from + jump).min(n_blocks.saturating_sub(1));
            }
            // No estimate (no lock): retransmit from the same point.
        }
        report.delivered = believed_complete && delivered_ok.iter().all(|&b| b);
        Ok(report)
    }

    /// Access to the underlying link.
    pub fn link(&self) -> &FdLink {
        &self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_ambient::AmbientConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg_at(dist: f64) -> LinkConfig {
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = dist;
        cfg
    }

    #[test]
    fn clean_channel_single_frame() {
        let mut cfg = cfg_at(0.3);
        cfg.ambient = AmbientConfig::Cw;
        cfg.field_noise_dbm = -160.0;
        let mut rng = ChaCha8Rng::seed_from_u64(500);
        let mut arq = ResumeArq::new(cfg, ResumeArqConfig::default(), &mut rng).unwrap();
        let payload = vec![0xABu8; 96];
        let r = arq.transfer(&payload, &mut rng).unwrap();
        assert!(r.delivered);
        assert_eq!(r.frames_sent, 1);
    }

    #[test]
    fn lossy_channel_resumes_and_saves_airtime() {
        let mut rng = ChaCha8Rng::seed_from_u64(501);
        let payload = vec![0x3Cu8; 160]; // 10 blocks — long frame
        let mut arq = ResumeArq::new(
            cfg_at(0.55),
            ResumeArqConfig {
                max_attempts: 24,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let mut delivered = 0;
        let mut total_airtime = 0u64;
        for _ in 0..5 {
            let r = arq.transfer(&payload, &mut rng).unwrap();
            if r.delivered {
                delivered += 1;
            }
            total_airtime += r.channel_samples;
        }
        assert!(delivered >= 3, "only {delivered}/5 delivered");
        // Compare against plain early abort (full retransmit) on the same
        // channel and seeds: resume must not use more airtime on average.
        let mut rng2 = ChaCha8Rng::seed_from_u64(501);
        let mut plain = crate::early_abort::EarlyAbortArq::new(
            cfg_at(0.55),
            crate::early_abort::EarlyAbortConfig {
                max_attempts: 24,
                ..Default::default()
            },
            &mut rng2,
        )
        .unwrap();
        let mut plain_airtime = 0u64;
        for _ in 0..5 {
            let r = plain.transfer(&payload, &mut rng2).unwrap();
            plain_airtime += r.channel_samples;
        }
        assert!(
            total_airtime < plain_airtime * 12 / 10,
            "resume airtime {total_airtime} vs plain {plain_airtime}"
        );
    }

    #[test]
    fn hopeless_channel_gives_up_cleanly() {
        let mut rng = ChaCha8Rng::seed_from_u64(502);
        let mut arq = ResumeArq::new(
            cfg_at(3.0),
            ResumeArqConfig {
                max_attempts: 3,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let r = arq.transfer(&[1u8; 64], &mut rng).unwrap();
        assert!(!r.delivered);
        assert_eq!(r.frames_sent, 3);
    }

    #[test]
    fn content_check_rejects_wrong_blocks() {
        // Internal invariant: a block only counts if its *content* matches
        // the original at the mapped offset. Exercised implicitly above;
        // here a direct sanity check of the mapping arithmetic.
        let cfg = cfg_at(0.3);
        let bl = cfg.phy.block_len_bytes;
        assert_eq!(bl, 16);
        let payload: Vec<u8> = (0..48).map(|i| i as u8).collect();
        // Block 2 of the original == block 0 of a frame resumed from 2.
        assert_eq!(&payload[32..48], &payload[2 * bl..2 * bl + 16]);
    }
}
