//! Collision handling: full-duplex collision detection vs slotted ALOHA.
//!
//! Backscatter tags cannot carrier-sense a transmission that is 30 dB below
//! the ambient carrier, so classical CSMA is off the table. The full-duplex
//! feedback channel restores the missing primitive: a transmitter whose
//! receiver fails to raise feedback pilots within the pilot window *knows*
//! its frame is not being received (collision, or a dead link) and aborts
//! after `pilot_latency` bits instead of burning the whole frame.
//!
//! This module is an event-level model at bit granularity over a shared
//! channel; its two calibration constants (`frame_bits`, `pilot_latency_bits`)
//! come straight from the PHY configuration, and the underlying collision
//! assumption (two overlapping transmitters ⇒ receiver cannot lock) is
//! validated against the sample-level network simulator in the workspace
//! integration tests.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Access-protocol variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessMode {
    /// Transmit the whole frame blind; learn the outcome only afterwards.
    Aloha,
    /// Full-duplex collision detection: abort `pilot_latency_bits` in when
    /// the feedback pilots fail to appear.
    FdCollisionDetect,
}

/// Configuration for the multi-access simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CsmaConfig {
    /// Number of contending transmitters.
    pub n_nodes: usize,
    /// Frame length in data bits.
    pub frame_bits: u64,
    /// Bits into a frame at which an FD transmitter learns the pilots are
    /// missing (guard + pilot-pattern feedback bits, from the PHY config).
    pub pilot_latency_bits: u64,
    /// Per-node probability of a new frame arriving per bit-time.
    pub arrival_per_bit: f64,
    /// Initial backoff window in bits (doubles per retry, binary
    /// exponential, capped at 10 doublings).
    pub backoff_min_bits: u64,
    /// Maximum retransmission attempts per frame.
    pub max_attempts: u32,
    /// Protocol under test.
    pub mode: AccessMode,
    /// Simulation horizon in bit-times.
    pub horizon_bits: u64,
}

/// Data-bit times until an FD transmitter learns its feedback pilots are
/// missing: the feedback guard interval plus one full pilot pattern at the
/// feedback ratio. The abort latency of FD collision detection — shared by
/// the event-level model here and the city engine's frame scheduler.
pub fn pilot_latency_bits(phy: &fdb_core::config::PhyConfig) -> u64 {
    (phy.feedback_guard_bits + fdb_core::feedback::PILOTS.len() * phy.feedback_ratio) as u64
}

/// Binary-exponential backoff window in bit-times after `attempt` failed
/// attempts: `min_bits · 2^min(attempt, 10)`. The retry draws a uniform
/// delay from `[0, window)`.
pub fn backoff_window(min_bits: u64, attempt: u32) -> u64 {
    min_bits.max(1) << attempt.min(10)
}

impl CsmaConfig {
    /// Defaults with the pilot latency derived from the given PHY config
    /// via [`pilot_latency_bits`]. Deriving (rather than hardcoding) keeps
    /// the event-level model honest when the PHY's guard or ratio changes.
    pub fn from_phy(phy: &fdb_core::config::PhyConfig, n_nodes: usize, mode: AccessMode) -> Self {
        let pilot_latency_bits = pilot_latency_bits(phy);
        CsmaConfig {
            n_nodes,
            frame_bits: 2500,
            pilot_latency_bits,
            arrival_per_bit: 2e-5,
            backoff_min_bits: 512,
            max_attempts: 12,
            mode,
            horizon_bits: 2_000_000,
        }
    }

    /// Defaults matched to the default PHY (1 kbps, 256-byte-ish frames,
    /// m = 32 feedback ratio). Delegates to
    /// [`from_phy`](CsmaConfig::from_phy) so the pilot latency tracks the
    /// PHY configuration instead of drifting as a hardcoded constant.
    pub fn default_with(n_nodes: usize, mode: AccessMode) -> Self {
        Self::from_phy(&fdb_core::config::PhyConfig::default_fd(), n_nodes, mode)
    }
}

/// Aggregate results of one multi-access run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CsmaReport {
    /// Frames delivered without collision.
    pub delivered: u64,
    /// Frame transmissions that ended in collision.
    pub collisions: u64,
    /// Collisions cut short by FD collision detection.
    pub aborted: u64,
    /// Frames dropped after exhausting attempts.
    pub dropped: u64,
    /// Bit-times during which at least one node held the channel.
    pub busy_bits: u64,
    /// Bit-times wasted inside collisions (all colliding parties summed).
    pub wasted_bits: u64,
    /// Total horizon simulated.
    pub horizon_bits: u64,
}

impl CsmaReport {
    /// Useful throughput: delivered payload bit-time over the horizon.
    pub fn goodput_fraction(&self, frame_bits: u64) -> f64 {
        if self.horizon_bits == 0 {
            return 0.0;
        }
        (self.delivered * frame_bits) as f64 / self.horizon_bits as f64
    }

    /// Fraction of channel-busy time that was wasted in collisions.
    pub fn waste_fraction(&self) -> f64 {
        if self.busy_bits == 0 {
            0.0
        } else {
            (self.wasted_bits.min(self.busy_bits)) as f64 / self.busy_bits as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Bit-time at which this node's pending frame may (re)start; None =
    /// no frame queued.
    ready_at: Option<u64>,
    attempts: u32,
    /// While transmitting: the bit-time transmission started.
    tx_started: Option<u64>,
    /// Scheduled end of the current transmission.
    tx_ends: u64,
    collided: bool,
}

impl Node {
    fn idle() -> Self {
        Node {
            ready_at: None,
            attempts: 0,
            tx_started: None,
            tx_ends: 0,
            collided: false,
        }
    }
}

/// Runs the event-level multi-access simulation.
pub fn run<R: Rng + ?Sized>(cfg: &CsmaConfig, rng: &mut R) -> CsmaReport {
    let mut nodes = vec![Node::idle(); cfg.n_nodes.max(1)];
    let mut report = CsmaReport {
        horizon_bits: cfg.horizon_bits,
        ..Default::default()
    };
    // Event loop at bit granularity. The channel is "in collision" when two
    // or more nodes transmit in the same bit; colliding frames fail.
    for t in 0..cfg.horizon_bits {
        // Arrivals.
        for node in nodes.iter_mut() {
            if node.ready_at.is_none()
                && node.tx_started.is_none()
                && rng.gen_range(0.0..1.0) < cfg.arrival_per_bit
            {
                node.ready_at = Some(t);
                node.attempts = 0;
            }
        }
        // Start transmissions that are due.
        for node in nodes.iter_mut() {
            if node.tx_started.is_none() && node.ready_at.map(|r| r <= t).unwrap_or(false) {
                node.tx_started = Some(t);
                node.tx_ends = t + cfg.frame_bits;
                node.collided = false;
            }
        }
        // Channel state this bit.
        let active: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.tx_started.is_some())
            .map(|(i, _)| i)
            .collect();
        if !active.is_empty() {
            report.busy_bits += 1;
        }
        if active.len() >= 2 {
            report.wasted_bits += active.len() as u64;
            for &i in &active {
                nodes[i].collided = true;
            }
        }
        // FD collision detection: abort once the pilot window passes with a
        // collision flagged.
        if cfg.mode == AccessMode::FdCollisionDetect {
            for node in nodes.iter_mut() {
                if let Some(start) = node.tx_started {
                    if node.collided && t >= start + cfg.pilot_latency_bits {
                        node.tx_ends = t; // cut short now
                    }
                }
            }
        }
        // Completions.
        for node in nodes.iter_mut() {
            if let Some(_start) = node.tx_started {
                if t + 1 >= node.tx_ends {
                    let collided = node.collided;
                    node.tx_started = None;
                    if !collided {
                        report.delivered += 1;
                        node.ready_at = None;
                    } else {
                        report.collisions += 1;
                        if cfg.mode == AccessMode::FdCollisionDetect {
                            report.aborted += 1;
                        }
                        node.attempts += 1;
                        if node.attempts >= cfg.max_attempts {
                            report.dropped += 1;
                            node.ready_at = None;
                        } else {
                            let window = backoff_window(cfg.backoff_min_bits, node.attempts);
                            node.ready_at = Some(t + 1 + rng.gen_range(0..window));
                        }
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn single_node_never_collides() {
        let mut rng = ChaCha8Rng::seed_from_u64(300);
        let cfg = CsmaConfig::default_with(1, AccessMode::Aloha);
        let r = run(&cfg, &mut rng);
        assert_eq!(r.collisions, 0);
        assert!(r.delivered > 5, "delivered {}", r.delivered);
    }

    #[test]
    fn fd_cd_beats_aloha_under_contention() {
        let mut rng = ChaCha8Rng::seed_from_u64(301);
        let mut aloha_cfg = CsmaConfig::default_with(12, AccessMode::Aloha);
        aloha_cfg.arrival_per_bit = 1e-4; // heavy load
        let mut fd_cfg = aloha_cfg;
        fd_cfg.mode = AccessMode::FdCollisionDetect;
        let aloha = run(&aloha_cfg, &mut rng);
        let fd = run(&fd_cfg, &mut rng);
        assert!(
            fd.goodput_fraction(fd_cfg.frame_bits) > aloha.goodput_fraction(aloha_cfg.frame_bits),
            "FD-CD {} vs ALOHA {}",
            fd.goodput_fraction(fd_cfg.frame_bits),
            aloha.goodput_fraction(aloha_cfg.frame_bits)
        );
        // The mechanism: FD wastes far fewer bits per collision.
        assert!(fd.waste_fraction() < aloha.waste_fraction());
    }

    #[test]
    fn aborted_collisions_cost_pilot_latency_not_frame() {
        let mut rng = ChaCha8Rng::seed_from_u64(302);
        let mut cfg = CsmaConfig::default_with(8, AccessMode::FdCollisionDetect);
        cfg.arrival_per_bit = 2e-4;
        cfg.horizon_bits = 500_000;
        let r = run(&cfg, &mut rng);
        assert!(r.collisions > 0, "no collisions generated");
        // Wasted bits per collision participant should be near the pilot
        // latency, far below the frame length.
        let per_collision = r.wasted_bits as f64 / (r.collisions.max(1) as f64);
        assert!(
            per_collision < cfg.frame_bits as f64 / 4.0,
            "per-collision waste {per_collision} bits"
        );
    }

    #[test]
    fn delivered_monotone_with_offered_load_at_low_load() {
        let mut rng = ChaCha8Rng::seed_from_u64(303);
        let mut low = CsmaConfig::default_with(4, AccessMode::Aloha);
        low.arrival_per_bit = 5e-6;
        let mut high = low;
        high.arrival_per_bit = 2e-5;
        let r_low = run(&low, &mut rng);
        let r_high = run(&high, &mut rng);
        assert!(r_high.delivered > r_low.delivered);
    }

    #[test]
    fn pilot_latency_derives_from_phy() {
        use fdb_core::config::PhyConfig;
        // Contract: the default config's pilot latency equals the value
        // derived from the default PHY (historically hardcoded as
        // 4 + 6·32 = 196 and prone to silent drift).
        let phy = PhyConfig::default_fd();
        let derived =
            (phy.feedback_guard_bits + fdb_core::feedback::PILOTS.len() * phy.feedback_ratio) as u64;
        let cfg = CsmaConfig::default_with(4, AccessMode::FdCollisionDetect);
        assert_eq!(cfg.pilot_latency_bits, derived);
        // And a changed PHY moves the derived latency with it.
        let mut fat = phy.clone();
        fat.feedback_guard_bits += 8;
        fat.feedback_ratio *= 2;
        let cfg = CsmaConfig::from_phy(&fat, 4, AccessMode::FdCollisionDetect);
        assert_eq!(
            cfg.pilot_latency_bits,
            (fat.feedback_guard_bits + fdb_core::feedback::PILOTS.len() * fat.feedback_ratio) as u64
        );
    }

    #[test]
    fn backoff_window_doubles_and_caps() {
        assert_eq!(backoff_window(512, 0), 512);
        assert_eq!(backoff_window(512, 1), 1024);
        assert_eq!(backoff_window(512, 10), 512 << 10);
        // Capped at 10 doublings, and a zero floor is clamped to 1.
        assert_eq!(backoff_window(512, 40), 512 << 10);
        assert_eq!(backoff_window(0, 0), 1);
    }

    #[test]
    fn report_fractions_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(304);
        let mut cfg = CsmaConfig::default_with(16, AccessMode::Aloha);
        cfg.arrival_per_bit = 5e-4;
        cfg.horizon_bits = 300_000;
        let r = run(&cfg, &mut rng);
        assert!(r.goodput_fraction(cfg.frame_bits) <= 1.0);
        assert!((0.0..=1.0).contains(&r.waste_fraction()));
        assert!(r.busy_bits <= r.horizon_bits);
    }
}
