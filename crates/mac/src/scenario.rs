//! End-to-end adaptive-MAC sessions over a real [`FdLink`] under faults.
//!
//! This is the paper's pitch run as one engine: a multi-frame session in
//! which every control decision — rate adaptation, early abort, flow
//! control — is driven **only by what device A can observe** (decoded
//! feedback bits, pilot verification, abort position), never by ground
//! truth, while the frames themselves run sample-by-sample through the
//! real PHY with scripted or generated impairments injected per frame.
//!
//! ## Decision inputs are observables
//!
//! A believes an attempt delivered iff the feedback pilot epoch verified,
//! no early abort fired, and the final decoded status bit is ACK — the
//! same rule as [`crate::early_abort`]. The NACK fraction fed to the
//! [`RateController`] is the decoded fraction (1.0 when no feedback
//! decoded at all), and an unverified pilot epoch counts as not-clean
//! (see [`RateController::on_frame_observed`]). Ground truth
//! (`FrameOutcome::fully_delivered`) is used exclusively for *scoring* the
//! session afterwards, so feedback-channel errors (false ACKs/NACKs) show
//! up as real protocol costs.
//!
//! ## Rate changes rebuild the link, seed-stably
//!
//! A rate switch is applied by rebuilding the link at the new
//! `samples_per_chip` between frames
//! ([`LinkConfig::at_samples_per_chip`]). Every slot `k` draws its RNG
//! from `derive_seed(session.seed, k)` — never from evolving link state —
//! so a controller decision at frame `j` cannot perturb the noise any
//! later frame sees. Identical `(config, session, fault source)` replay
//! byte-identically.
//!
//! ## Flow model
//!
//! With a [`FlowModel`] attached, B banks each frame's CRC-clean blocks
//! into a bounded buffer and drains it at a rate scaled by its *own*
//! harvested energy (an ambient fade slows the drain — B-local knowledge,
//! observable to B). With `backpressure` on, B streams NACK while busy and
//! A pauses one slot on NACK-heavy feedback; without it, blocks arriving
//! at a full buffer are silently dropped and A discovers the loss only at
//! the end of a pass (a ledger exchange), paying `retransmit_gap_frames`
//! of turnaround before re-sending — the overflow-retransmit baseline.

use crate::rate_adapt::{RateController, RateDecision};
use fdb_channel::impairment::{FaultActivations, FrameFaults};
use fdb_core::config::PhyConfig;
use fdb_core::link::{FdLink, FeedbackPolicy, FrameOutcome, FrameRun, LinkConfig, RunOptions};
use fdb_core::seed::derive_seed;
use fdb_core::PhyError;
use fdb_dsp::prbs::{Prbs, PrbsOrder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// XOR salt separating the session payload PRBS lineage from the seed.
const PAYLOAD_SALT: u64 = 0x5E55_10AD;

/// NACK fraction above which A treats feedback as a busy signal (flow
/// sessions with backpressure).
const BUSY_NACK_FRACTION: f64 = 0.5;

/// Serde default for [`SessionConfig::max_attempts`].
fn default_max_attempts() -> u32 {
    4
}

/// Serde default for [`SessionConfig::retry_gap_samples`].
fn default_retry_gap_samples() -> u64 {
    400
}

/// How the transmitter picks its chip rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RatePolicy {
    /// AIMD controller over a rate ladder, fed observables per frame.
    Adaptive {
        /// The controller (ladder + trip configuration).
        #[serde(default = "RateController::default_ladder")]
        controller: RateController,
    },
    /// Oblivious fixed rate.
    Fixed {
        /// The fixed `samples_per_chip`.
        samples_per_chip: usize,
    },
}

/// Receiver-buffer flow model layered over the PHY frames.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlowModel {
    /// B's buffer capacity in blocks.
    pub buffer_blocks: u64,
    /// Blocks B drains per frame-time at nominal harvest; the actual
    /// drain is scaled by B's harvested energy relative to the best it
    /// has seen (fades slow the drain).
    pub drain_blocks_per_frame: f64,
    /// Busy asserted at/above this fill level.
    pub high_watermark: u64,
    /// Busy cleared at/below this fill level.
    pub low_watermark: u64,
    /// `true`: B streams NACK while busy and A pauses on NACK-heavy
    /// feedback (FD backpressure). `false`: overflow-retransmit baseline.
    pub backpressure: bool,
    /// Turnaround cost (in nominal frame-times) of each end-of-pass
    /// ledger exchange in the overflow-retransmit baseline.
    pub retransmit_gap_frames: u64,
}

/// One adaptive-MAC session: what to transfer and which controllers run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Distinct payloads to transfer.
    pub frames: u64,
    /// Payload bytes per frame (PRBS-filled, keyed by payload index so a
    /// retry resends identical bytes).
    pub payload_len: usize,
    /// Session seed. Slot `k`'s RNG is `derive_seed(seed, k)`.
    pub seed: u64,
    /// Rate policy.
    pub rate: RatePolicy,
    /// A aborts a frame when a verified feedback bit reports NACK.
    #[serde(default)]
    pub early_abort: bool,
    /// Attempts per payload before A gives up on it.
    #[serde(default = "default_max_attempts")]
    pub max_attempts: u32,
    /// Gap between a failed attempt and its retry, in samples.
    #[serde(default = "default_retry_gap_samples")]
    pub retry_gap_samples: u64,
    /// Optional receiver-buffer flow model.
    #[serde(default)]
    pub flow: Option<FlowModel>,
    /// Device separation added per slot (metres) — a walk-away ramp.
    #[serde(default)]
    pub distance_ramp_m_per_slot: f64,
}

impl SessionConfig {
    /// Validates the session parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.frames == 0 {
            return Err("frames must be ≥ 1".into());
        }
        if self.payload_len == 0 {
            return Err("payload_len must be ≥ 1".into());
        }
        if self.max_attempts == 0 {
            return Err("max_attempts must be ≥ 1".into());
        }
        if !self.distance_ramp_m_per_slot.is_finite() {
            return Err("distance_ramp_m_per_slot must be finite".into());
        }
        if let RatePolicy::Fixed { samples_per_chip } = self.rate {
            if samples_per_chip < 4 {
                return Err(format!(
                    "fixed samples_per_chip {samples_per_chip} below the PHY floor of 4"
                ));
            }
        }
        if let Some(flow) = &self.flow {
            if flow.buffer_blocks == 0 {
                return Err("flow.buffer_blocks must be ≥ 1".into());
            }
            if !(flow.drain_blocks_per_frame.is_finite() && flow.drain_blocks_per_frame > 0.0) {
                return Err("flow.drain_blocks_per_frame must be positive".into());
            }
            if flow.low_watermark > flow.high_watermark
                || flow.high_watermark > flow.buffer_blocks
            {
                return Err(format!(
                    "flow watermarks must satisfy low ≤ high ≤ buffer ({} ≤ {} ≤ {})",
                    flow.low_watermark, flow.high_watermark, flow.buffer_blocks
                ));
            }
        }
        Ok(())
    }

    /// Hard slot budget [`run_session`] will never exceed: every payload's
    /// attempt budget, doubled to leave room for backpressure pauses, plus
    /// a fixed allowance for end-of-pass turnarounds. Fault generators use
    /// this as the frame horizon to cover.
    pub fn slot_cap(&self) -> u64 {
        self.frames * u64::from(self.max_attempts) * 2 + 64
    }

    /// The slowest (largest) samples-per-chip this session can run at —
    /// the upper bound on frame airtime, used to size whole-frame fault
    /// windows.
    pub fn slowest_sps(&self) -> usize {
        match &self.rate {
            RatePolicy::Adaptive { controller } => controller.slowest_sps(),
            RatePolicy::Fixed { samples_per_chip } => *samples_per_chip,
        }
    }
}

/// One slot of the session: a transmitted frame attempt or a pause.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrameRecord {
    /// Slot index (the fault/seed timeline).
    pub slot: u64,
    /// Payload index attempted this slot.
    pub payload: u64,
    /// `true` when A paused instead of transmitting (backpressure).
    pub paused: bool,
    /// Chip rate the slot ran at.
    pub samples_per_chip: usize,
    /// Ladder position (0 = fastest) for adaptive sessions.
    pub ladder_position: Option<usize>,
    /// The controller's decision after this frame (adaptive, transmitted
    /// slots only).
    pub decision: Option<RateDecision>,
    /// Device separation this slot.
    pub distance_m: f64,
    /// Observable: feedback pilot epoch verified.
    pub pilots_verified: bool,
    /// Observable: decoded NACK fraction (1.0 when nothing decoded).
    pub nack_fraction: f64,
    /// Observable: A believes the attempt delivered.
    pub believed_delivered: bool,
    /// Ground truth (scoring only): every block arrived intact and, in
    /// flow sessions, was banked without drops.
    pub delivered: bool,
    /// The frame was cut short by early abort.
    pub aborted: bool,
    /// Flow: blocks banked into B's buffer this slot.
    pub blocks_accepted: u64,
    /// Flow: CRC-clean blocks dropped at a full buffer this slot.
    pub blocks_dropped: u64,
    /// Flow: B's buffer fill after the slot.
    pub buffer_blocks: u64,
    /// Samples the slot consumed (frame run or nominal pause).
    pub samples_run: u64,
}

/// Aggregate result of one session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptationReport {
    /// Distinct payloads the session tried to transfer.
    pub payloads: u64,
    /// Frame transmissions (excludes pauses).
    pub attempts: u64,
    /// Slots A spent paused by backpressure.
    pub paused_slots: u64,
    /// Payloads delivered intact (ground truth).
    pub delivered_payloads: u64,
    /// Payloads A believes it delivered (observables).
    pub believed_delivered: u64,
    /// Payloads A believes delivered that ground truth says were not.
    pub false_acks: u64,
    /// Payloads not delivered intact (ground truth): abandoned after
    /// `max_attempts`, lost to a false ACK, or stranded at session end.
    pub failed_payloads: u64,
    /// Attempts cut short by early abort.
    pub aborted_frames: u64,
    /// Rate-ladder switches the controller made.
    pub rate_switches: u64,
    /// End-of-pass ledger exchanges (flow sessions).
    pub retransmit_passes: u64,
    /// Flow: blocks banked into B's buffer.
    pub blocks_accepted: u64,
    /// Flow: CRC-clean blocks dropped at a full buffer.
    pub blocks_dropped: u64,
    /// Bytes of payload delivered intact (ground truth).
    pub delivered_payload_bytes: u64,
    /// Samples A held the channel.
    pub airtime_samples: u64,
    /// Total session duration in samples (frames + retry gaps + pauses +
    /// ledger turnarounds).
    pub elapsed_samples: u64,
    /// Energy consumed by A (J).
    pub energy_a_j: f64,
    /// Energy consumed by B (J).
    pub energy_b_j: f64,
    /// Scripted faults whose windows opened during the session.
    pub fault_activations: FaultActivations,
    /// Sample rate the session ran at (for goodput conversion).
    pub sample_rate_hz: f64,
    /// Per-slot records, in slot order.
    pub records: Vec<FrameRecord>,
}

impl AdaptationReport {
    /// Ground-truth goodput in bits per second.
    pub fn goodput_bps(&self) -> f64 {
        if self.elapsed_samples == 0 {
            return 0.0;
        }
        let secs = self.elapsed_samples as f64 / self.sample_rate_hz;
        (self.delivered_payload_bytes * 8) as f64 / secs
    }

    /// Fraction of payloads delivered intact.
    pub fn delivery_fraction(&self) -> f64 {
        if self.payloads == 0 {
            return 0.0;
        }
        self.delivered_payloads as f64 / self.payloads as f64
    }

    /// Rate-ladder position per transmitted frame, in slot order (empty
    /// for fixed-rate sessions). The golden adaptation-trajectory corpus
    /// pins this.
    pub fn ladder_trajectory(&self) -> Vec<usize> {
        self.records
            .iter()
            .filter(|r| !r.paused)
            .filter_map(|r| r.ladder_position)
            .collect()
    }
}

/// Airtime of one nominal frame (preamble + framed payload) in samples at
/// the given PHY rate — the cost model for pauses and ledger turnarounds,
/// and the frame horizon fault generators size whole-frame windows to.
pub fn nominal_frame_samples(phy: &PhyConfig, payload_len: usize) -> u64 {
    ((phy.preamble.len() + fdb_core::frame::frame_bits_len(phy, payload_len))
        * phy.samples_per_bit()) as u64
}

/// Post-pilot feedback bits that fit in a frame (mirrors the sim runner).
fn feedback_bits_in_frame(phy: &PhyConfig, payload_len: usize) -> usize {
    let bits = phy.preamble.len() + fdb_core::frame::frame_bits_len(phy, payload_len);
    let usable = bits.saturating_sub(phy.feedback_guard_bits);
    (usable / phy.feedback_ratio).saturating_sub(fdb_core::feedback::PILOTS.len())
}

/// Per-payload transfer state.
#[derive(Clone, Copy, Default)]
struct PayloadState {
    attempts: u32,
    banked: bool,
    believed: bool,
    failed: bool,
}

/// B's buffer/drain state for flow sessions.
struct FlowState {
    buffer: u64,
    drain_credit: f64,
    busy: bool,
    /// A's (one-slot-delayed, observable) view of the busy signal.
    busy_observed: bool,
    /// Best harvested energy per frame B has seen (drain normalizer).
    nominal_harvest: f64,
    /// Latest harvest scale (applies to pause/turnaround drains).
    harvest_scale: f64,
}

impl FlowState {
    fn new() -> Self {
        FlowState {
            buffer: 0,
            drain_credit: 0.0,
            busy: false,
            busy_observed: false,
            nominal_harvest: 0.0,
            harvest_scale: 1.0,
        }
    }

    /// One frame-time of draining at the current harvest scale, then the
    /// watermark update.
    fn drain_tick(&mut self, flow: &FlowModel) {
        self.drain_credit += flow.drain_blocks_per_frame * self.harvest_scale;
        while self.drain_credit >= 1.0 && self.buffer > 0 {
            self.buffer -= 1;
            self.drain_credit -= 1.0;
        }
        self.drain_credit = self.drain_credit.min(flow.drain_blocks_per_frame.max(1.0));
        if self.buffer >= flow.high_watermark {
            self.busy = true;
        } else if self.buffer <= flow.low_watermark {
            self.busy = false;
        }
    }

    /// Updates the harvest normalizer/scale from one frame's B-side
    /// harvested energy (B-local knowledge).
    fn observe_harvest(&mut self, harvested_j: f64) {
        if harvested_j > self.nominal_harvest {
            self.nominal_harvest = harvested_j;
        }
        self.harvest_scale = if self.nominal_harvest > 0.0 {
            (harvested_j / self.nominal_harvest).clamp(0.0, 1.0)
        } else {
            1.0
        };
    }
}

/// Runs one adaptive-MAC session over `base`, pulling each slot's fault
/// schedule from `frame_faults(slot, &mut engine)`: the closure re-arms
/// the session-owned [`FrameFaults`] engine for the slot and returns
/// whether any fault is scheduled (`false` = clean slot, engine ignored).
/// The closure shape keeps this crate independent of `fdb-sim`'s
/// `FaultPlan`; the sim layer adapts a plan via
/// `|slot, engine| plan.frame_faults_into(slot, engine)`.
///
/// The session owns one of everything — link (re-initialised per slot via
/// [`FdLink::reinit`], reusing its scratch arena), outcome, payload and
/// feedback buffers, fault engine — so steady-state slots at a settled
/// rate perform no heap allocation; a rate switch rebuilds the working
/// set once (warmup).
pub fn run_session<F>(
    base: &LinkConfig,
    session: &SessionConfig,
    mut frame_faults: F,
) -> Result<AdaptationReport, PhyError>
where
    F: FnMut(u64, &mut FrameFaults) -> bool,
{
    session
        .validate()
        .map_err(|reason| PhyError::InvalidConfig {
            field: "session",
            reason,
        })?;

    let mut ctrl = match &session.rate {
        RatePolicy::Adaptive { controller } => Some(controller.clone()),
        RatePolicy::Fixed { .. } => None,
    };
    let fixed_sps = match &session.rate {
        RatePolicy::Fixed { samples_per_chip } => *samples_per_chip,
        RatePolicy::Adaptive { .. } => 0,
    };
    let flow_cfg = session.flow;
    let mut flow = flow_cfg.map(|_| FlowState::new());
    let blocks_per_frame = session.payload_len.div_ceil(base.phy.block_len_bytes) as u64;

    let mut state = vec![PayloadState::default(); session.frames as usize];
    let mut queue: VecDeque<u64> = (0..session.frames).collect();
    let mut report = AdaptationReport {
        payloads: session.frames,
        attempts: 0,
        paused_slots: 0,
        delivered_payloads: 0,
        believed_delivered: 0,
        false_acks: 0,
        failed_payloads: 0,
        aborted_frames: 0,
        rate_switches: 0,
        retransmit_passes: 0,
        blocks_accepted: 0,
        blocks_dropped: 0,
        delivered_payload_bytes: 0,
        airtime_samples: 0,
        elapsed_samples: 0,
        energy_a_j: 0.0,
        energy_b_j: 0.0,
        fault_activations: FaultActivations::default(),
        sample_rate_hz: base.phy.sample_rate_hz,
        // Sized to the session's hard slot bound up front so record pushes
        // never reallocate mid-session (the zero-allocation steady state).
        records: Vec::with_capacity(session.slot_cap() as usize),
    };

    let mut slot: u64 = 0;
    let slot_cap = session.slot_cap();

    // One of everything, reused across slots: config staging, the link
    // (built lazily on the first transmitting slot, re-initialised in
    // place afterwards), the frame outcome, payload/feedback staging and
    // the fault-injection engine.
    let mut cfg = base.clone();
    let mut link: Option<FdLink> = None;
    let mut out = FrameOutcome::default();
    let mut payload: Vec<u8> = Vec::new();
    let mut fault_engine = FrameFaults::new(Vec::new(), 0);
    let ack_opts = RunOptions {
        feedback: FeedbackPolicy::AckStatus,
        abort_on_nack: session.early_abort,
    };
    let mut busy_opts = RunOptions {
        feedback: FeedbackPolicy::Stream(Vec::new()),
        abort_on_nack: session.early_abort,
    };

    while !queue.is_empty() && slot < slot_cap {
        let pid = *queue.front().expect("queue non-empty");
        let sps = ctrl
            .as_ref()
            .map(|c| c.current_sps())
            .unwrap_or(fixed_sps);
        let distance =
            base.geometry.device_dist_m + session.distance_ramp_m_per_slot * slot as f64;
        cfg.phy.samples_per_chip = sps;
        cfg.geometry.device_dist_m = distance;
        let nominal_samples = nominal_frame_samples(&cfg.phy, session.payload_len);
        let fb_bits = feedback_bits_in_frame(&cfg.phy, session.payload_len);

        // FD backpressure: A observed busy feedback last slot → hold off
        // one slot (B drains through the silence), then probe again.
        if let (Some(fs), Some(fc)) = (flow.as_mut(), flow_cfg.as_ref()) {
            if fc.backpressure && fs.busy_observed {
                fs.drain_tick(fc);
                fs.busy_observed = false;
                report.paused_slots += 1;
                report.elapsed_samples += nominal_samples;
                report.records.push(FrameRecord {
                    slot,
                    payload: pid,
                    paused: true,
                    samples_per_chip: sps,
                    ladder_position: ctrl.as_ref().map(|c| c.position()),
                    decision: None,
                    distance_m: distance,
                    pilots_verified: false,
                    nack_fraction: 0.0,
                    believed_delivered: false,
                    delivered: false,
                    aborted: false,
                    blocks_accepted: 0,
                    blocks_dropped: 0,
                    buffer_blocks: fs.buffer,
                    samples_run: nominal_samples,
                });
                slot += 1;
                continue;
            }
        }

        // Slot streams derive from (session seed, slot) only: a rate
        // decision or retry at slot j never moves slot k's draws.
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(session.seed, slot));
        let link = match link.as_mut() {
            Some(l) => {
                l.reinit(&cfg, &mut rng)?;
                l
            }
            None => link.insert(FdLink::new(cfg.clone(), &mut rng)?),
        };
        Prbs::new(
            PrbsOrder::Prbs23,
            derive_seed(session.seed ^ PAYLOAD_SALT, pid).max(1),
        )
        .bytes_into(session.payload_len, &mut payload);

        // B streams NACK while busy (backpressure on): the in-band busy
        // signal rides the existing feedback channel.
        let b_streams_busy = matches!(
            (flow.as_ref(), flow_cfg.as_ref()),
            (Some(fs), Some(fc)) if fc.backpressure && fs.busy
        );
        let opts = if b_streams_busy {
            if let FeedbackPolicy::Stream(bits) = &mut busy_opts.feedback {
                bits.clear();
                bits.resize(fb_bits.max(1), false);
            }
            &busy_opts
        } else {
            &ack_opts
        };
        let has_faults = frame_faults(slot, &mut fault_engine);
        link.run_frame_into(
            &payload,
            opts,
            &mut rng,
            FrameRun::faulted(has_faults.then_some(&mut fault_engine)),
            &mut out,
        )?;

        // --- A's observables ---
        let nacks = out.feedback.iter().filter(|f| !f.bit).count();
        let nack_fraction = if out.feedback.is_empty() {
            1.0
        } else {
            nacks as f64 / out.feedback.len() as f64
        };
        let believed = out.pilots_verified
            && out.aborted_at_sample.is_none()
            && out.feedback.last().map(|f| f.bit).unwrap_or(false);

        // --- flow accounting (B side) ---
        let clean_blocks = out.partial_blocks.iter().filter(|b| b.ok).count() as u64;
        let (accepted, dropped) = match (flow.as_mut(), flow_cfg.as_ref()) {
            (Some(fs), Some(fc)) => {
                let room = fc.buffer_blocks.saturating_sub(fs.buffer);
                let acc = clean_blocks.min(room);
                fs.buffer += acc;
                fs.observe_harvest(out.energy.b_harvested_j);
                fs.drain_tick(fc);
                if fc.backpressure {
                    fs.busy_observed = out.pilots_verified && nack_fraction > BUSY_NACK_FRACTION;
                }
                (acc, clean_blocks - acc)
            }
            _ => (clean_blocks, 0),
        };
        let banked = out.fully_delivered()
            && (flow.is_none() || (dropped == 0 && accepted == blocks_per_frame));
        if banked {
            state[pid as usize].banked = true;
        }

        // --- rate decision (adaptive) ---
        let decision = ctrl.as_mut().map(|c| {
            let before = c.current_sps();
            let d = c.on_frame_observed(out.pilots_verified, believed, nack_fraction);
            if c.current_sps() != before {
                report.rate_switches += 1;
            }
            d
        });

        // --- A's transfer decision ---
        queue.pop_front();
        let st = &mut state[pid as usize];
        st.attempts += 1;
        if believed {
            st.believed = true;
        } else if st.attempts < session.max_attempts {
            queue.push_front(pid);
            report.elapsed_samples += session.retry_gap_samples;
        } else {
            st.failed = true;
        }

        report.attempts += 1;
        if out.aborted_at_sample.is_some() {
            report.aborted_frames += 1;
        }
        report.blocks_accepted += accepted;
        report.blocks_dropped += dropped;
        report.airtime_samples += out.airtime_samples as u64;
        report.elapsed_samples += out.samples_run as u64;
        report.energy_a_j += out.energy.a_consumed_j;
        report.energy_b_j += out.energy.b_consumed_j;
        report.fault_activations.merge(&out.fault_activations);
        report.records.push(FrameRecord {
            slot,
            payload: pid,
            paused: false,
            samples_per_chip: sps,
            ladder_position: ctrl.as_ref().map(|c| c.position()),
            decision,
            distance_m: distance,
            pilots_verified: out.pilots_verified,
            nack_fraction,
            believed_delivered: believed,
            delivered: banked,
            aborted: out.aborted_at_sample.is_some(),
            blocks_accepted: accepted,
            blocks_dropped: dropped,
            buffer_blocks: flow.as_ref().map(|f| f.buffer).unwrap_or(0),
            samples_run: out.samples_run as u64,
        });
        slot += 1;

        // --- end-of-pass ledger exchange (flow sessions) ---
        if queue.is_empty() {
            if let (Some(fs), Some(fc)) = (flow.as_mut(), flow_cfg.as_ref()) {
                let resend: Vec<u64> = (0..session.frames)
                    .filter(|&p| {
                        let s = &state[p as usize];
                        !s.banked && !s.failed && s.attempts < session.max_attempts
                    })
                    .collect();
                if !resend.is_empty() {
                    // B's ledger names the payloads with missing blocks;
                    // the turnaround costs gap frame-times during which B
                    // keeps draining.
                    queue.extend(resend);
                    report.retransmit_passes += 1;
                    report.elapsed_samples += fc.retransmit_gap_frames * nominal_samples;
                    for _ in 0..fc.retransmit_gap_frames {
                        fs.drain_tick(fc);
                    }
                    if fc.backpressure {
                        fs.busy_observed = false;
                    }
                }
            }
        }
    }

    for st in &state {
        if st.banked {
            report.delivered_payloads += 1;
            report.delivered_payload_bytes += session.payload_len as u64;
        } else {
            report.failed_payloads += 1;
            if st.believed {
                report.false_acks += 1;
            }
        }
        if st.believed {
            report.believed_delivered += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_ambient::AmbientConfig;

    fn clean_cfg() -> LinkConfig {
        let mut cfg = LinkConfig::default_fd();
        cfg.ambient = AmbientConfig::Cw;
        cfg.field_noise_dbm = -160.0;
        cfg
    }

    fn quick_session(seed: u64) -> SessionConfig {
        SessionConfig {
            frames: 4,
            payload_len: 32,
            seed,
            rate: RatePolicy::Fixed {
                samples_per_chip: 10,
            },
            early_abort: false,
            max_attempts: 3,
            retry_gap_samples: 200,
            flow: None,
            distance_ramp_m_per_slot: 0.0,
        }
    }

    #[test]
    fn clean_session_delivers_everything_first_try() {
        let r = run_session(&clean_cfg(), &quick_session(11), |_, _| false).unwrap();
        assert_eq!(r.delivered_payloads, 4);
        assert_eq!(r.believed_delivered, 4);
        assert_eq!(r.attempts, 4);
        assert_eq!(r.false_acks, 0);
        assert!(r.goodput_bps() > 0.0);
    }

    #[test]
    fn session_replays_byte_identically() {
        let a = run_session(&clean_cfg(), &quick_session(17), |_, _| false).unwrap();
        let b = run_session(&clean_cfg(), &quick_session(17), |_, _| false).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn adaptive_session_starts_slow_and_climbs_on_clean_link() {
        let mut s = quick_session(23);
        s.frames = 8;
        s.rate = RatePolicy::Adaptive {
            controller: RateController::new(vec![5, 10, 20], 2),
        };
        let r = run_session(&clean_cfg(), &s, |_, _| false).unwrap();
        let traj = r.ladder_trajectory();
        assert_eq!(traj.first(), Some(&2), "must start at the slowest rung");
        assert!(
            traj.last().unwrap() < traj.first().unwrap(),
            "clean link never climbed: {traj:?}"
        );
        assert!(r.rate_switches >= 1);
    }

    #[test]
    fn invalid_sessions_are_rejected() {
        let mut s = quick_session(1);
        s.frames = 0;
        assert!(run_session(&clean_cfg(), &s, |_, _| false).is_err());
        let mut s = quick_session(1);
        s.rate = RatePolicy::Fixed { samples_per_chip: 2 };
        assert!(run_session(&clean_cfg(), &s, |_, _| false).is_err());
        let mut s = quick_session(1);
        s.flow = Some(FlowModel {
            buffer_blocks: 4,
            drain_blocks_per_frame: 1.0,
            high_watermark: 6,
            low_watermark: 1,
            backpressure: true,
            retransmit_gap_frames: 2,
        });
        assert!(run_session(&clean_cfg(), &s, |_, _| false).is_err());
    }

    #[test]
    fn session_config_round_trips_and_defaults() {
        let s = quick_session(5);
        let json = serde_json::to_string(&s).unwrap();
        let back: SessionConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.frames, 4);
        assert_eq!(back.max_attempts, 3);
        // Terse JSON gets serde defaults, including the controller.
        let terse = r#"{"frames":2,"payload_len":16,"seed":1,
            "rate":{"Adaptive":{}}}"#;
        let s: SessionConfig = serde_json::from_str(terse).unwrap();
        assert_eq!(s.max_attempts, 4);
        assert_eq!(s.retry_gap_samples, 400);
        assert!(s.flow.is_none());
        match s.rate {
            RatePolicy::Adaptive { controller } => {
                assert_eq!(controller.current_sps(), 40);
                assert_eq!(controller.nack_trip(), 0.2);
            }
            _ => panic!("expected adaptive"),
        }
    }
}
