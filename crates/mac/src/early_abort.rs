//! Early-abort ARQ — the protocol instantaneous feedback enables.
//!
//! With the in-band feedback channel, the transmitter learns about a
//! corrupted block within one feedback bit (`m` data bits) instead of one
//! frame + turnaround + ACK. Two savings compound:
//!
//! * **Early abort** — a frame that has already lost a block is dead
//!   airtime; the transmitter cuts it short and retries immediately.
//! * **No ACK frames** — a frame whose feedback stream stayed ACK through
//!   its end *is* acknowledged; the reverse transmission and both
//!   turnarounds disappear.
//!
//! The decision logic runs purely on what device A can actually observe
//! (decoded feedback bits); actual delivery is scored from ground truth, so
//! feedback-channel errors (false ACKs, false NACKs) show up as real
//! protocol costs.

use crate::report::TransferReport;
use fdb_core::link::{FdLink, FrameOutcome, LinkConfig, RunOptions};
use fdb_core::PhyError;
use rand::Rng;

/// Early-abort ARQ configuration.
#[derive(Debug, Clone, Copy)]
pub struct EarlyAbortConfig {
    /// Maximum frame transmissions before giving up.
    pub max_attempts: u32,
    /// Gap between an abort/retry decision and the next attempt, samples.
    pub retry_gap_samples: u64,
}

impl Default for EarlyAbortConfig {
    fn default() -> Self {
        EarlyAbortConfig {
            max_attempts: 8,
            retry_gap_samples: 400,
        }
    }
}

/// Early-abort ARQ session over one full-duplex link.
pub struct EarlyAbortArq {
    link: FdLink,
    cfg: EarlyAbortConfig,
}

impl EarlyAbortArq {
    /// Builds the session.
    pub fn new<R: Rng + ?Sized>(
        link_cfg: LinkConfig,
        cfg: EarlyAbortConfig,
        rng: &mut R,
    ) -> Result<Self, PhyError> {
        Ok(EarlyAbortArq {
            link: FdLink::new(link_cfg, rng)?,
            cfg,
        })
    }

    /// What A believes about an attempt, from its own observables only.
    fn a_believes_delivered(out: &FrameOutcome) -> bool {
        // A requires: pilots verified (B locked and the feedback channel is
        // alive), no abort fired, and the final decoded status bit is ACK.
        out.pilots_verified
            && out.aborted_at_sample.is_none()
            && out.feedback.last().map(|f| f.bit).unwrap_or(false)
    }

    /// Transfers one payload with early abort + in-band ACK.
    pub fn transfer<R: Rng + ?Sized>(
        &mut self,
        payload: &[u8],
        rng: &mut R,
    ) -> Result<TransferReport, PhyError> {
        let mut report = TransferReport {
            payload_bytes: payload.len(),
            ..Default::default()
        };
        let mut delivered = false;
        for _ in 0..self.cfg.max_attempts {
            let out = self
                .link
                .run_frame(payload, &RunOptions::fd_early_abort(), rng)?;
            report.frames_sent += 1;
            if out.aborted_at_sample.is_some() {
                report.aborts += 1;
            }
            report.channel_samples += out.airtime_samples as u64;
            report.elapsed_samples += out.samples_run as u64 + self.cfg.retry_gap_samples;
            report.energy_a_j += out.energy.a_consumed_j;
            report.energy_b_j += out.energy.b_consumed_j;

            let believed = Self::a_believes_delivered(&out);
            let actually = out.fully_delivered();
            if believed {
                // A stops here; ground truth decides whether this was a
                // genuine delivery or a feedback false-ACK.
                delivered = actually;
                break;
            }
        }
        report.delivered = delivered;
        Ok(report)
    }

    /// Access to the underlying link.
    pub fn link(&self) -> &FdLink {
        &self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_ambient::AmbientConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn clean_cfg() -> LinkConfig {
        let mut cfg = LinkConfig::default_fd();
        cfg.ambient = AmbientConfig::Cw;
        cfg.field_noise_dbm = -160.0;
        cfg
    }

    fn cfg_at(dist: f64) -> LinkConfig {
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = dist;
        cfg
    }

    #[test]
    fn clean_channel_no_abort_no_ack_frame() {
        let mut rng = ChaCha8Rng::seed_from_u64(210);
        let mut arq = EarlyAbortArq::new(clean_cfg(), EarlyAbortConfig::default(), &mut rng).unwrap();
        let r = arq.transfer(&[7u8; 64], &mut rng).unwrap();
        assert!(r.delivered);
        assert_eq!(r.frames_sent, 1);
        assert_eq!(r.aborts, 0);
        assert_eq!(r.ack_frames_sent, 0);
    }

    #[test]
    fn lossy_channel_aborts_and_retries() {
        let mut rng = ChaCha8Rng::seed_from_u64(211);
        // 0.55 m with 48-byte frames: individual blocks fail regularly but
        // whole frames still get through within a handful of retries.
        let mut arq = EarlyAbortArq::new(
            cfg_at(0.55),
            EarlyAbortConfig {
                max_attempts: 24,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let mut aborts = 0;
        let mut delivered = 0;
        for i in 0..6 {
            let payload = vec![i as u8 ^ 0x5A; 48];
            let r = arq.transfer(&payload, &mut rng).unwrap();
            aborts += r.aborts;
            if r.delivered {
                delivered += 1;
            }
        }
        assert!(aborts > 0, "early abort never fired on a lossy channel");
        assert!(delivered >= 4, "only {delivered}/6 delivered");
    }

    #[test]
    fn aborted_frames_cost_less_airtime() {
        let mut rng = ChaCha8Rng::seed_from_u64(212);
        let payload = vec![0x11u8; 128];
        // Full airtime of this frame on a clean channel.
        let mut clean = EarlyAbortArq::new(clean_cfg(), EarlyAbortConfig::default(), &mut rng).unwrap();
        let full = clean.transfer(&payload, &mut rng).unwrap();
        let full_airtime = full.channel_samples;

        // On a lossy channel, frames that aborted must have spent less.
        let mut lossy = EarlyAbortArq::new(
            cfg_at(0.65),
            EarlyAbortConfig {
                max_attempts: 1,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let mut saw_abort_saving = false;
        for _ in 0..12 {
            let r = lossy.transfer(&payload, &mut rng).unwrap();
            if r.aborts > 0 && r.channel_samples < full_airtime {
                saw_abort_saving = true;
            }
        }
        assert!(saw_abort_saving, "aborts never saved airtime");
    }

    #[test]
    fn hopeless_channel_gives_up() {
        let mut rng = ChaCha8Rng::seed_from_u64(213);
        let mut arq = EarlyAbortArq::new(
            cfg_at(3.0),
            EarlyAbortConfig {
                max_attempts: 4,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let r = arq.transfer(&[1u8; 32], &mut rng).unwrap();
        assert!(!r.delivered);
        assert_eq!(r.frames_sent, 4);
    }
}
