//! Reliable chunked streaming over the full-duplex link.
//!
//! Backscatter applications rarely send one frame; they stream sensor
//! logs. This session layer chunks a byte stream into framed segments,
//! prefixes each with a tiny stream header (sequence number + flags),
//! transfers them through a configurable ARQ protocol, and reassembles on
//! the far side with duplicate/ordering checks. The window is one segment
//! — a backscatter link is stop-and-go by nature — so the layer's value is
//! bookkeeping, not pipelining.
//!
//! Stream header (4 bytes, inside the PHY payload):
//!
//! ```text
//! [ seq: u16 BE ][ flags: u8 (bit0 = FINAL) ][ len-check: u8 = seq_lo ^ flags ^ 0xC3 ]
//! ```

use crate::early_abort::{EarlyAbortArq, EarlyAbortConfig};
use crate::report::TransferReport;
use crate::selective::{ResumeArq, ResumeArqConfig};
use fdb_core::link::LinkConfig;
use fdb_core::PhyError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Stream header length in bytes.
pub const HEADER_LEN: usize = 4;

/// Flag bit marking the final segment of a stream.
const FLAG_FINAL: u8 = 0x01;
/// Header check constant.
const CHECK_MAGIC: u8 = 0xC3;

/// Encodes a stream header.
pub fn encode_header(seq: u16, is_final: bool) -> [u8; HEADER_LEN] {
    let flags = if is_final { FLAG_FINAL } else { 0 };
    let [hi, lo] = seq.to_be_bytes();
    [hi, lo, flags, lo ^ flags ^ CHECK_MAGIC]
}

/// Decodes and validates a stream header.
pub fn decode_header(bytes: &[u8]) -> Option<(u16, bool)> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    let seq = u16::from_be_bytes([bytes[0], bytes[1]]);
    let flags = bytes[2];
    if bytes[3] != bytes[1] ^ flags ^ CHECK_MAGIC {
        return None;
    }
    Some((seq, flags & FLAG_FINAL != 0))
}

/// Which retransmission protocol carries the segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamProtocol {
    /// Full-frame early abort.
    EarlyAbort,
    /// Early abort with resume-from-failed-block.
    Resume,
}

/// Streaming session configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Payload bytes per segment (before the 4-byte stream header).
    pub chunk_bytes: usize,
    /// Carrier protocol.
    pub protocol: StreamProtocol,
    /// Attempts per segment before the stream fails.
    pub max_attempts: u32,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            chunk_bytes: 60,
            protocol: StreamProtocol::EarlyAbort,
            max_attempts: 16,
        }
    }
}

/// Result of streaming one byte buffer.
#[derive(Debug, Clone, Default)]
pub struct StreamReport {
    /// Whether every segment delivered and reassembled in order.
    pub complete: bool,
    /// Reassembled bytes (equals the input when `complete`).
    pub reassembled: Vec<u8>,
    /// Segments sent / delivered.
    pub segments: u32,
    /// Aggregate transfer accounting.
    pub transfer: TransferReport,
    /// Segments that arrived with corrupt stream headers (counted, dropped).
    pub bad_headers: u32,
    /// Out-of-order or duplicate segments rejected by the reassembler.
    pub sequence_errors: u32,
}

enum Carrier {
    EarlyAbort(EarlyAbortArq),
    Resume(ResumeArq),
}

/// A live streaming session over one link.
pub struct StreamSession {
    carrier: Carrier,
    cfg: StreamConfig,
    next_seq: u16,
}

impl StreamSession {
    /// Builds a session.
    pub fn new<R: Rng + ?Sized>(
        link_cfg: LinkConfig,
        cfg: StreamConfig,
        rng: &mut R,
    ) -> Result<Self, PhyError> {
        let carrier = match cfg.protocol {
            StreamProtocol::EarlyAbort => Carrier::EarlyAbort(EarlyAbortArq::new(
                link_cfg,
                EarlyAbortConfig {
                    max_attempts: cfg.max_attempts,
                    ..Default::default()
                },
                rng,
            )?),
            StreamProtocol::Resume => Carrier::Resume(ResumeArq::new(
                link_cfg,
                ResumeArqConfig {
                    max_attempts: cfg.max_attempts,
                    ..Default::default()
                },
                rng,
            )?),
        };
        Ok(StreamSession {
            carrier,
            cfg,
            next_seq: 0,
        })
    }

    fn transfer<R: Rng + ?Sized>(
        &mut self,
        payload: &[u8],
        rng: &mut R,
    ) -> Result<TransferReport, PhyError> {
        match &mut self.carrier {
            Carrier::EarlyAbort(c) => c.transfer(payload, rng),
            Carrier::Resume(c) => c.transfer(payload, rng),
        }
    }

    /// Streams `data`, returning the reassembly report. The session's
    /// sequence numbers continue across calls (a long-lived sensor).
    pub fn send<R: Rng + ?Sized>(
        &mut self,
        data: &[u8],
        rng: &mut R,
    ) -> Result<StreamReport, PhyError> {
        let chunk = self.cfg.chunk_bytes.max(1);
        let mut report = StreamReport {
            complete: true,
            ..Default::default()
        };
        report.transfer.delivered = true;
        let n_segments = data.len().div_ceil(chunk).max(1);
        let mut expected_seq = self.next_seq;
        for (i, piece) in data.chunks(chunk).enumerate() {
            let is_final = i + 1 == n_segments;
            let mut payload = Vec::with_capacity(HEADER_LEN + piece.len());
            payload.extend_from_slice(&encode_header(self.next_seq, is_final));
            payload.extend_from_slice(piece);
            let r = self.transfer(&payload, rng)?;
            report.segments += 1;
            let delivered = r.delivered;
            report.transfer.accumulate(&r);
            self.next_seq = self.next_seq.wrapping_add(1);
            if !delivered {
                report.complete = false;
                break;
            }
            // Receiver-side reassembly on the (ground-truth) delivered
            // payload: header must validate and the sequence must advance.
            match decode_header(&payload) {
                Some((seq, _)) if seq == expected_seq => {
                    expected_seq = expected_seq.wrapping_add(1);
                    report.reassembled.extend_from_slice(piece);
                }
                Some(_) => {
                    report.sequence_errors += 1;
                    report.complete = false;
                    break;
                }
                None => {
                    report.bad_headers += 1;
                    report.complete = false;
                    break;
                }
            }
        }
        if data.is_empty() {
            report.segments = 0;
            report.complete = true;
        }
        report.complete &= report.reassembled == data;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_ambient::AmbientConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn clean_cfg() -> LinkConfig {
        let mut cfg = LinkConfig::default_fd();
        cfg.ambient = AmbientConfig::Cw;
        cfg.field_noise_dbm = -160.0;
        cfg
    }

    #[test]
    fn header_roundtrip_and_validation() {
        for seq in [0u16, 1, 255, 256, u16::MAX] {
            for fin in [false, true] {
                let h = encode_header(seq, fin);
                assert_eq!(decode_header(&h), Some((seq, fin)));
            }
        }
        // Any single-byte corruption of the check/flag fields is caught.
        let mut h = encode_header(300, true);
        h[3] ^= 0x10;
        assert_eq!(decode_header(&h), None);
        let mut h = encode_header(300, true);
        h[2] ^= 0x02;
        assert_eq!(decode_header(&h), None);
        assert_eq!(decode_header(&[1, 2]), None);
    }

    #[test]
    fn clean_stream_reassembles() {
        let mut rng = ChaCha8Rng::seed_from_u64(800);
        let mut s = StreamSession::new(clean_cfg(), StreamConfig::default(), &mut rng).unwrap();
        let data: Vec<u8> = (0..200u16).map(|i| (i * 7) as u8).collect();
        let r = s.send(&data, &mut rng).unwrap();
        assert!(r.complete);
        assert_eq!(r.reassembled, data);
        assert_eq!(r.segments, 4); // 200 bytes / 60-byte chunks
        assert_eq!(r.bad_headers, 0);
    }

    #[test]
    fn sequence_continues_across_sends() {
        let mut rng = ChaCha8Rng::seed_from_u64(801);
        let mut s = StreamSession::new(clean_cfg(), StreamConfig::default(), &mut rng).unwrap();
        assert!(s.send(&[1u8; 10], &mut rng).unwrap().complete);
        assert_eq!(s.next_seq, 1);
        assert!(s.send(&[2u8; 130], &mut rng).unwrap().complete);
        assert_eq!(s.next_seq, 4);
    }

    #[test]
    fn empty_stream_is_trivially_complete() {
        let mut rng = ChaCha8Rng::seed_from_u64(802);
        let mut s = StreamSession::new(clean_cfg(), StreamConfig::default(), &mut rng).unwrap();
        let r = s.send(&[], &mut rng).unwrap();
        assert!(r.complete);
        assert_eq!(r.segments, 0);
    }

    #[test]
    fn dead_link_reports_incomplete() {
        let mut rng = ChaCha8Rng::seed_from_u64(803);
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = 3.0;
        let mut s = StreamSession::new(
            cfg,
            StreamConfig {
                max_attempts: 2,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let r = s.send(&[5u8; 100], &mut rng).unwrap();
        assert!(!r.complete);
        assert!(r.reassembled.len() < 100);
    }

    #[test]
    fn resume_carrier_streams_on_lossy_link() {
        let mut rng = ChaCha8Rng::seed_from_u64(804);
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = 0.5;
        let mut s = StreamSession::new(
            cfg,
            StreamConfig {
                protocol: StreamProtocol::Resume,
                max_attempts: 24,
                chunk_bytes: 76,
            },
            &mut rng,
        )
        .unwrap();
        let data: Vec<u8> = (0..300u16).map(|i| i as u8).collect();
        let r = s.send(&data, &mut rng).unwrap();
        assert!(r.complete, "stream failed: {} segments", r.segments);
        assert_eq!(r.reassembled, data);
    }
}
