#!/usr/bin/env python3
"""Regenerate the city-scale golden report in results/golden/.

Runs `probe city` on the checked-in city_64 scenario and stores the full
CityReport (per-tag ledgers, totals, scheduler statistics) as
pretty-printed JSON. The diff test
tests/city_scale.rs::golden_city_report_matches replays the same spec
through fdb_sim::CityEngine and compares field-for-field, so rerun this
script whenever an engine, MAC, or geometry change intentionally shifts
the city trajectory — and eyeball the diff before committing.

Usage:  python3 tools/regen_city_golden.py   (from the repo root)
"""

import json
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SCENARIO = "configs/scenarios/city_64.json"
DEST = ROOT / "results" / "golden" / "city_small.json"


def main() -> int:
    out = DEST.with_suffix(".tmp")
    cmd = [
        "cargo", "run", "--release", "-q", "-p", "fdb-bench", "--bin", "probe", "--",
        "city",
        "--config", SCENARIO,
        "--json-out", str(out),
    ]
    subprocess.run(cmd, cwd=ROOT, check=True, capture_output=True, text=True)
    report = json.loads(out.read_text())
    out.unlink()
    assert report.get("ledgers"), "probe city produced no ledgers"
    assert report["totals"]["offered"] == (
        report["totals"]["delivered"]
        + report["totals"]["lost"]
        + report["totals"]["pending"]
    ), "conservation violated in regenerated golden"
    DEST.parent.mkdir(parents=True, exist_ok=True)
    DEST.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {DEST.relative_to(ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
