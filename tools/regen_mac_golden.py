#!/usr/bin/env python3
"""Regenerate the adaptation-trajectory golden vectors in results/golden/.

Runs the probe's adaptive-MAC ablation report for the drift-ramp scenario
and stores the adaptive arm's rate-ladder trajectory plus its headline
counters as pretty-printed JSON. The diff test
tests/mac_scenarios.rs::golden_adaptation_trajectory_matches replays the
same scenario and compares field-for-field, so rerun this script whenever
a PHY or MAC change intentionally shifts the adaptation path — and eyeball
the diff before committing.

Usage:  python3 tools/regen_mac_golden.py   (from the repo root)
"""

import json
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SCENARIOS = ["drift_ramp"]


def regen(name: str) -> None:
    cmd = [
        "cargo", "run", "--release", "-q", "-p", "fdb-bench", "--bin", "probe", "--",
        "--report", "mac",
        "--config", f"configs/scenarios/{name}.json",
    ]
    out = subprocess.run(cmd, cwd=ROOT, check=True, capture_output=True, text=True)
    summary = json.loads(out.stdout.splitlines()[-1])
    assert summary.get("summary"), "probe did not end with a summary line"
    adaptive = summary["adaptive"]
    golden = {
        "scenario": f"configs/scenarios/{name}.json",
        "label": summary["label"],
        "ladder_trajectory": adaptive["ladder_trajectory"],
        "delivered_payloads": adaptive["delivered_payloads"],
        "failed_payloads": adaptive["failed_payloads"],
        "attempts": adaptive["attempts"],
        "rate_switches": adaptive["rate_switches"],
        "elapsed_samples": adaptive["elapsed_samples"],
    }
    dest = ROOT / "results" / "golden" / f"mac_{name}.json"
    dest.parent.mkdir(parents=True, exist_ok=True)
    dest.write_text(json.dumps(golden, indent=2) + "\n")
    print(f"wrote {dest.relative_to(ROOT)}")


def main() -> int:
    for name in SCENARIOS:
        regen(name)
    return 0


if __name__ == "__main__":
    sys.exit(main())
