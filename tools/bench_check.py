#!/usr/bin/env python3
"""Assemble and gate the benchmark trajectory files (BENCH_*.json).

The vendored criterion harness appends one JSON line per benchmark to the
file named by FDB_BENCH_JSON, and the counting-allocator suite
(tests/alloc_steady_state.rs) appends one line per scenario to the file
named by FDB_ALLOC_JSON. This tool turns those streams into a committed
trajectory file, and gates CI on it:

  # run the benches, collecting machine-readable results
  FDB_BENCH_JSON=target/bench.jsonl cargo bench -p fdb-bench --no-default-features

  # run the counting-allocator suite, collecting steady-state alloc counts
  FDB_ALLOC_JSON=target/alloc.jsonl cargo test --release --test alloc_steady_state

  # assemble the paired speedups + alloc counts into a trajectory file
  python3 tools/bench_check.py emit --jsonl target/bench.jsonl \
      --alloc-jsonl target/alloc.jsonl \
      --out BENCH_pr9.json --label pr9 [--enforce-floors]

  # CI smoke gate: recompute speedups and fail on >20% regression
  python3 tools/bench_check.py check --jsonl target/bench.jsonl \
      --baseline BENCH_pr9.json --tolerance 0.20

  # CI alloc gate: fail if any steady-state scenario allocates at all
  python3 tools/bench_check.py check --alloc-jsonl target/alloc.jsonl \
      --baseline BENCH_pr9.json

  # run the city-scale gate, collecting the 10k-tag event trajectory
  FDB_CITY_JSON=target/city.jsonl cargo test --release --test city_scale \
      -- --include-ignored
  python3 tools/bench_check.py check --city-jsonl target/city.jsonl \
      --baseline BENCH_pr10.json

Only *ratios* (candidate vs baseline within one process on one machine) and
*allocation counts* (exact, machine-independent) are compared across runs,
never absolute times, so the gate is machine-portable. Python 3 standard
library only.
"""

import argparse
import json
import sys

# Optimised/scalar pairs the trajectory tracks. `floor` is the minimum
# speedup the optimised implementation must show over its in-process scalar
# baseline (None = report-only). Floors come from the PR-6 acceptance
# criteria: >=5x on preamble search, >=2x on end-to-end rx decode.
PAIRS = {
    "preamble_search_16k": {
        "baseline": "sync/preamble_sliding_ncc_16k",
        "candidate": "sync/preamble_fft_correlate_16k",
        "floor": 5.0,
    },
    "rx_chain_64B_frame": {
        "baseline": "rx_chain/sic_resample_decode_64B_per_sample",
        "candidate": "rx_chain/sic_resample_decode_64B_block",
        "floor": 2.0,
    },
    # Dispatch-only slice of the pair above (shared finish-chip/DLL work
    # dominates, so the ratio is structurally capped well under the chain
    # pair's floor): report-only.
    "rx_decode_64B_frame": {
        "baseline": "phy_loopback/rx_decode_64B_frame",
        "candidate": "phy_loopback/rx_decode_64B_frame_slices",
        "floor": None,
    },
    "fir_9tap_4096": {
        "baseline": "fir/9tap_per_sample_4096",
        "candidate": "fir/9tap_block_4096",
        "floor": None,
    },
    "fir_33tap_4096": {
        "baseline": "fir/33tap_per_sample_4096",
        "candidate": "fir/33tap_block_4096",
        "floor": None,
    },
    "fir_65tap_4096": {
        "baseline": "fir/65tap_per_sample_4096",
        "candidate": "fir/65tap_block_4096",
        "floor": None,
    },
    "run_frame_64B_cw": {
        "baseline": "fd_link/run_frame_64B_cw_reference",
        "candidate": "fd_link/run_frame_64B_cw",
        "floor": None,
    },
    "run_frame_64B_tv_wideband": {
        "baseline": "fd_link/run_frame_64B_tv_wideband_reference",
        "candidate": "fd_link/run_frame_64B_tv_wideband",
        "floor": None,
    },
}

# Steady-state allocation scenarios the trajectory tracks, from
# tests/alloc_steady_state.rs. `floor` is the maximum allocations the
# scenario may perform after its one-frame warmup — the PR-9 acceptance
# criterion pins every one of them at zero.
ALLOC_SCENARIOS = {
    "alloc/clean_link_reference": 0,
    "alloc/clean_link_block": 0,
    "alloc/clean_link_dispatch": 0,
    "alloc/faulted_link_reference": 0,
    "alloc/faulted_link_block": 0,
    "alloc/mac_session": 0,
    # PR-10: second run of a reused CityEngine (tests/city_scale.rs).
    "alloc/city_steady": 0,
}

# City-scale scenarios the trajectory tracks, from tests/city_scale.rs
# (FDB_CITY_JSON stream). The processed-event count is fully deterministic
# and machine-independent, so `check` gates it *exactly* against the
# committed trajectory; wall_s / events_per_s are machine-local and
# report-only (the Rust test itself enforces the 60 s CI budget).
CITY_SCENARIOS = {"city/10k_1h"}

# Relative floors applied when emitting with --prior: the fresh speedup
# must be at least `floor` times the prior trajectory's committed speedup.
# PR-9's scratch-arena redesign must not cost the block rx chain its PR-6
# gain; the floor sits 5% under parity because the ratio compares two
# separate quick-mode invocations, whose run-to-run noise is a few percent
# (a real regression of the pair itself trips the 20% `check` gate too).
REL_FLOORS = {"rx_chain_64B_frame": 0.95}

SCHEMA = "fdb-bench-trajectory-v2"
# v1 files (BENCH_pr6.json) predate the `allocs` section; `check` still
# accepts them as baselines.
OLD_SCHEMAS = {"fdb-bench-trajectory-v1"}


def load_jsonl(path):
    """Parse the criterion result stream into {bench name: mean seconds}."""
    means = {}
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: bad JSON line: {e}")
            name, mean = rec.get("name"), rec.get("mean_s")
            if not isinstance(name, str) or not isinstance(mean, (int, float)):
                sys.exit(f"{path}:{lineno}: missing name/mean_s: {line}")
            if mean <= 0:
                sys.exit(f"{path}:{lineno}: non-positive mean_s for {name}")
            # Keep the last record when a bench ran more than once.
            means[name] = float(mean)
    if not means:
        sys.exit(f"{path}: no benchmark records found")
    return means


def load_alloc_jsonl(path):
    """Parse the alloc result stream into {scenario: (allocs, frames)}."""
    counts = {}
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: bad JSON line: {e}")
            name, allocs = rec.get("name"), rec.get("steady_allocs")
            frames = rec.get("frames")
            if not isinstance(name, str) or not isinstance(allocs, int):
                sys.exit(f"{path}:{lineno}: missing name/steady_allocs: {line}")
            # Keep the last record when a scenario ran more than once.
            counts[name] = (allocs, frames if isinstance(frames, int) else 0)
    if not counts:
        sys.exit(f"{path}: no allocation records found")
    return counts


def load_city_jsonl(path):
    """Parse the city-scale result stream into {scenario: record}."""
    recs = {}
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: bad JSON line: {e}")
            name, events = rec.get("name"), rec.get("events_processed")
            if not isinstance(name, str) or not isinstance(events, int):
                sys.exit(f"{path}:{lineno}: missing name/events_processed: {line}")
            recs[name] = {
                "events_processed": events,
                "wall_s": float(rec.get("wall_s", 0.0)),
                "events_per_s": float(rec.get("events_per_s", 0.0)),
            }
    if not recs:
        sys.exit(f"{path}: no city-scale records found")
    missing = sorted(CITY_SCENARIOS - recs.keys())
    if missing:
        sys.exit("missing city-scale results: " + ", ".join(missing))
    return recs


def build_allocs(counts):
    """Resolve every tracked alloc scenario against the measured counts."""
    out, missing = {}, []
    for name, floor in ALLOC_SCENARIOS.items():
        if name not in counts:
            missing.append(name)
            continue
        allocs, frames = counts[name]
        out[name] = {
            "steady_allocs": allocs,
            "frames": frames,
            "floor": floor,
        }
    if missing:
        sys.exit("missing allocation results: " + ", ".join(sorted(missing)))
    return out


def build_pairs(means):
    """Resolve every tracked pair against the measured means."""
    out, missing = {}, []
    for key, spec in PAIRS.items():
        base, cand = spec["baseline"], spec["candidate"]
        if base not in means or cand not in means:
            missing.extend(n for n in (base, cand) if n not in means)
            continue
        out[key] = {
            "baseline": base,
            "candidate": cand,
            "baseline_mean_s": means[base],
            "candidate_mean_s": means[cand],
            "speedup": means[base] / means[cand],
            "floor": spec["floor"],
        }
    if missing:
        sys.exit("missing benchmark results: " + ", ".join(sorted(set(missing))))
    return out


def cmd_emit(args):
    means = load_jsonl(args.jsonl)
    pairs = build_pairs(means)
    doc = {
        "schema": SCHEMA,
        "label": args.label,
        "pairs": pairs,
        "raw_mean_s": dict(sorted(means.items())),
    }
    failures = []
    for key, p in pairs.items():
        print(f"{key:<32} {p['speedup']:6.2f}x  "
              f"({p['baseline_mean_s']:.3e}s -> {p['candidate_mean_s']:.3e}s)")
        if args.enforce_floors and p["floor"] and p["speedup"] < p["floor"]:
            failures.append(
                f"{key}: speedup {p['speedup']:.2f}x below floor {p['floor']:.1f}x")
    if args.prior:
        with open(args.prior, encoding="utf-8") as fh:
            prior_doc = json.load(fh)
        prior_pairs = prior_doc.get("pairs", {})
        rel = {}
        for key, floor in REL_FLOORS.items():
            if key not in pairs or key not in prior_pairs:
                sys.exit(f"relative floor {key}: pair missing from "
                         f"{'fresh run' if key not in pairs else args.prior}")
            prior_speedup = prior_pairs[key]["speedup"]
            ratio = pairs[key]["speedup"] / prior_speedup
            rel[key] = {
                "prior_speedup": prior_speedup,
                "ratio": ratio,
                "floor": floor,
            }
            print(f"{key:<32} {ratio:6.2f}x of {prior_doc.get('label', '?')}'s "
                  f"{prior_speedup:.2f}x (floor {floor:.1f}x)")
            if args.enforce_floors and ratio < floor:
                failures.append(
                    f"{key}: fresh speedup is only {ratio:.2f}x of the "
                    f"{prior_doc.get('label', '?')} trajectory "
                    f"(floor {floor:.1f}x)")
        doc["prior"] = {"label": prior_doc.get("label"), "rel": rel}
    allocs = {}
    if args.alloc_jsonl:
        allocs = build_allocs(load_alloc_jsonl(args.alloc_jsonl))
        doc["allocs"] = allocs
        for name, a in allocs.items():
            print(f"{name:<32} {a['steady_allocs']:6d} allocs over "
                  f"{a['frames']} steady-state frames (floor {a['floor']})")
            if args.enforce_floors and a["steady_allocs"] > a["floor"]:
                failures.append(
                    f"{name}: {a['steady_allocs']} steady-state allocations "
                    f"exceed floor {a['floor']}")
    city = {}
    if args.city_jsonl:
        city = load_city_jsonl(args.city_jsonl)
        doc["city"] = city
        for name, c in city.items():
            print(f"{name:<32} {c['events_processed']:10d} events in "
                  f"{c['wall_s']:.3f} s ({c['events_per_s']:.0f} events/s)")
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {args.out} ({len(pairs)} pairs, {len(means)} benches, "
          f"{len(allocs)} alloc scenarios, {len(city)} city scenarios)")
    if failures:
        sys.exit("floor violations:\n  " + "\n  ".join(failures))


def cmd_check(args):
    if not args.jsonl and not args.alloc_jsonl and not args.city_jsonl:
        sys.exit("check: pass --jsonl, --alloc-jsonl, and/or --city-jsonl")
    with open(args.baseline, encoding="utf-8") as fh:
        base_doc = json.load(fh)
    if base_doc.get("schema") != SCHEMA and base_doc.get("schema") not in OLD_SCHEMAS:
        sys.exit(f"{args.baseline}: unexpected schema {base_doc.get('schema')!r}")
    failures = []
    checked = []
    if args.jsonl:
        fresh = build_pairs(load_jsonl(args.jsonl))
        for key, committed in base_doc.get("pairs", {}).items():
            if key not in fresh:
                failures.append(f"{key}: pair missing from fresh run")
                continue
            want = committed["speedup"] * (1.0 - args.tolerance)
            got = fresh[key]["speedup"]
            status = "ok" if got >= want else "REGRESSED"
            print(f"{key:<32} committed {committed['speedup']:6.2f}x  "
                  f"fresh {got:6.2f}x  (gate >= {want:.2f}x)  {status}")
            if got < want:
                failures.append(
                    f"{key}: fresh speedup {got:.2f}x is more than "
                    f"{args.tolerance:.0%} below committed {committed['speedup']:.2f}x")
        checked.append(f"{len(base_doc.get('pairs', {}))} pairs within "
                       f"{args.tolerance:.0%}")
    if args.alloc_jsonl:
        committed_allocs = base_doc.get("allocs")
        if not committed_allocs:
            sys.exit(f"{args.baseline}: no `allocs` section to gate against "
                     "(baseline predates the allocation trajectory?)")
        counts = load_alloc_jsonl(args.alloc_jsonl)
        for name, committed in committed_allocs.items():
            if name not in counts:
                failures.append(f"{name}: scenario missing from fresh run")
                continue
            got, _frames = counts[name]
            floor = committed["floor"]
            status = "ok" if got <= floor else "REGRESSED"
            print(f"{name:<32} committed {committed['steady_allocs']:6d}  "
                  f"fresh {got:6d}  (gate <= {floor})  {status}")
            if got > floor:
                failures.append(
                    f"{name}: {got} steady-state allocations exceed "
                    f"the committed floor of {floor}")
        checked.append(f"{len(committed_allocs)} alloc scenarios at floor")
    if args.city_jsonl:
        committed_city = base_doc.get("city")
        if not committed_city:
            sys.exit(f"{args.baseline}: no `city` section to gate against "
                     "(baseline predates the city-scale trajectory?)")
        fresh_city = load_city_jsonl(args.city_jsonl)
        for name, committed in committed_city.items():
            if name not in fresh_city:
                failures.append(f"{name}: scenario missing from fresh run")
                continue
            c = fresh_city[name]
            want = committed["events_processed"]
            got = c["events_processed"]
            status = "ok" if got == want else "DIVERGED"
            print(f"{name:<32} committed {want:10d} events  fresh {got:10d}  "
                  f"({c['wall_s']:.3f} s, {c['events_per_s']:.0f} events/s)  "
                  f"{status}")
            if got != want:
                failures.append(
                    f"{name}: fresh run processed {got} events but the "
                    f"committed trajectory pins {want} — the city engine's "
                    "deterministic schedule changed (rerun emit if intended)")
        checked.append(f"{len(committed_city)} city scenarios event-exact")
    if failures:
        sys.exit("bench regression gate failed:\n  " + "\n  ".join(failures))
    print(f"bench gate ok ({'; '.join(checked)} vs {args.baseline})")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="cmd", required=True)

    em = sub.add_parser("emit", help="assemble a BENCH_*.json trajectory file")
    em.add_argument("--jsonl", required=True, help="criterion FDB_BENCH_JSON output")
    em.add_argument("--alloc-jsonl",
                    help="counting-allocator FDB_ALLOC_JSON output "
                         "(tests/alloc_steady_state.rs)")
    em.add_argument("--city-jsonl",
                    help="city-scale FDB_CITY_JSON output "
                         "(tests/city_scale.rs, --include-ignored)")
    em.add_argument("--prior",
                    help="earlier committed BENCH_*.json; enforces the "
                         "relative speedup floors (REL_FLOORS) against it")
    em.add_argument("--out", required=True, help="trajectory file to write")
    em.add_argument("--label", default="dev", help="trajectory label (e.g. pr9)")
    em.add_argument("--enforce-floors", action="store_true",
                    help="fail if any pair or alloc scenario misses its "
                         "acceptance floor")
    em.set_defaults(fn=cmd_emit)

    ck = sub.add_parser("check", help="gate a fresh run against a committed file")
    ck.add_argument("--jsonl", help="criterion FDB_BENCH_JSON output")
    ck.add_argument("--alloc-jsonl",
                    help="counting-allocator FDB_ALLOC_JSON output; gates "
                         "fresh counts against the committed alloc floors")
    ck.add_argument("--city-jsonl",
                    help="city-scale FDB_CITY_JSON output; gates the "
                         "deterministic event count exactly against the "
                         "committed trajectory")
    ck.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    ck.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional speedup regression (default 0.20)")
    ck.set_defaults(fn=cmd_check)

    args = ap.parse_args()
    args.fn(args)


if __name__ == "__main__":
    main()
