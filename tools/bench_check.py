#!/usr/bin/env python3
"""Assemble and gate the benchmark trajectory files (BENCH_*.json).

The vendored criterion harness appends one JSON line per benchmark to the
file named by FDB_BENCH_JSON. This tool turns that stream into a committed
trajectory file, and gates CI on it:

  # run the benches, collecting machine-readable results
  FDB_BENCH_JSON=target/bench.jsonl cargo bench -p fdb-bench --no-default-features

  # assemble the paired speedups into a trajectory file
  python3 tools/bench_check.py emit --jsonl target/bench.jsonl \
      --out BENCH_pr6.json --label pr6 [--enforce-floors]

  # CI smoke gate: recompute speedups and fail on >20% regression
  python3 tools/bench_check.py check --jsonl target/bench.jsonl \
      --baseline BENCH_pr6.json --tolerance 0.20

Only *ratios* (candidate vs baseline within one process on one machine) are
compared across runs, never absolute times, so the gate is machine-portable.
Python 3 standard library only.
"""

import argparse
import json
import sys

# Optimised/scalar pairs the trajectory tracks. `floor` is the minimum
# speedup the optimised implementation must show over its in-process scalar
# baseline (None = report-only). Floors come from the PR-6 acceptance
# criteria: >=5x on preamble search, >=2x on end-to-end rx decode.
PAIRS = {
    "preamble_search_16k": {
        "baseline": "sync/preamble_sliding_ncc_16k",
        "candidate": "sync/preamble_fft_correlate_16k",
        "floor": 5.0,
    },
    "rx_chain_64B_frame": {
        "baseline": "rx_chain/sic_resample_decode_64B_per_sample",
        "candidate": "rx_chain/sic_resample_decode_64B_block",
        "floor": 2.0,
    },
    # Dispatch-only slice of the pair above (shared finish-chip/DLL work
    # dominates, so the ratio is structurally capped well under the chain
    # pair's floor): report-only.
    "rx_decode_64B_frame": {
        "baseline": "phy_loopback/rx_decode_64B_frame",
        "candidate": "phy_loopback/rx_decode_64B_frame_slices",
        "floor": None,
    },
    "fir_9tap_4096": {
        "baseline": "fir/9tap_per_sample_4096",
        "candidate": "fir/9tap_block_4096",
        "floor": None,
    },
    "fir_33tap_4096": {
        "baseline": "fir/33tap_per_sample_4096",
        "candidate": "fir/33tap_block_4096",
        "floor": None,
    },
    "fir_65tap_4096": {
        "baseline": "fir/65tap_per_sample_4096",
        "candidate": "fir/65tap_block_4096",
        "floor": None,
    },
    "run_frame_64B_cw": {
        "baseline": "fd_link/run_frame_64B_cw_reference",
        "candidate": "fd_link/run_frame_64B_cw",
        "floor": None,
    },
    "run_frame_64B_tv_wideband": {
        "baseline": "fd_link/run_frame_64B_tv_wideband_reference",
        "candidate": "fd_link/run_frame_64B_tv_wideband",
        "floor": None,
    },
}

SCHEMA = "fdb-bench-trajectory-v1"


def load_jsonl(path):
    """Parse the criterion result stream into {bench name: mean seconds}."""
    means = {}
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: bad JSON line: {e}")
            name, mean = rec.get("name"), rec.get("mean_s")
            if not isinstance(name, str) or not isinstance(mean, (int, float)):
                sys.exit(f"{path}:{lineno}: missing name/mean_s: {line}")
            if mean <= 0:
                sys.exit(f"{path}:{lineno}: non-positive mean_s for {name}")
            # Keep the last record when a bench ran more than once.
            means[name] = float(mean)
    if not means:
        sys.exit(f"{path}: no benchmark records found")
    return means


def build_pairs(means):
    """Resolve every tracked pair against the measured means."""
    out, missing = {}, []
    for key, spec in PAIRS.items():
        base, cand = spec["baseline"], spec["candidate"]
        if base not in means or cand not in means:
            missing.extend(n for n in (base, cand) if n not in means)
            continue
        out[key] = {
            "baseline": base,
            "candidate": cand,
            "baseline_mean_s": means[base],
            "candidate_mean_s": means[cand],
            "speedup": means[base] / means[cand],
            "floor": spec["floor"],
        }
    if missing:
        sys.exit("missing benchmark results: " + ", ".join(sorted(set(missing))))
    return out


def cmd_emit(args):
    means = load_jsonl(args.jsonl)
    pairs = build_pairs(means)
    doc = {
        "schema": SCHEMA,
        "label": args.label,
        "pairs": pairs,
        "raw_mean_s": dict(sorted(means.items())),
    }
    failures = []
    for key, p in pairs.items():
        print(f"{key:<32} {p['speedup']:6.2f}x  "
              f"({p['baseline_mean_s']:.3e}s -> {p['candidate_mean_s']:.3e}s)")
        if args.enforce_floors and p["floor"] and p["speedup"] < p["floor"]:
            failures.append(
                f"{key}: speedup {p['speedup']:.2f}x below floor {p['floor']:.1f}x")
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {args.out} ({len(pairs)} pairs, {len(means)} benches)")
    if failures:
        sys.exit("floor violations:\n  " + "\n  ".join(failures))


def cmd_check(args):
    means = load_jsonl(args.jsonl)
    fresh = build_pairs(means)
    with open(args.baseline, encoding="utf-8") as fh:
        base_doc = json.load(fh)
    if base_doc.get("schema") != SCHEMA:
        sys.exit(f"{args.baseline}: unexpected schema {base_doc.get('schema')!r}")
    failures = []
    for key, committed in base_doc.get("pairs", {}).items():
        if key not in fresh:
            failures.append(f"{key}: pair missing from fresh run")
            continue
        want = committed["speedup"] * (1.0 - args.tolerance)
        got = fresh[key]["speedup"]
        status = "ok" if got >= want else "REGRESSED"
        print(f"{key:<32} committed {committed['speedup']:6.2f}x  "
              f"fresh {got:6.2f}x  (gate >= {want:.2f}x)  {status}")
        if got < want:
            failures.append(
                f"{key}: fresh speedup {got:.2f}x is more than "
                f"{args.tolerance:.0%} below committed {committed['speedup']:.2f}x")
    if failures:
        sys.exit("bench regression gate failed:\n  " + "\n  ".join(failures))
    print(f"bench gate ok ({len(base_doc.get('pairs', {}))} pairs within "
          f"{args.tolerance:.0%} of {args.baseline})")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="cmd", required=True)

    em = sub.add_parser("emit", help="assemble a BENCH_*.json trajectory file")
    em.add_argument("--jsonl", required=True, help="criterion FDB_BENCH_JSON output")
    em.add_argument("--out", required=True, help="trajectory file to write")
    em.add_argument("--label", default="dev", help="trajectory label (e.g. pr6)")
    em.add_argument("--enforce-floors", action="store_true",
                    help="fail if any pair misses its acceptance floor")
    em.set_defaults(fn=cmd_emit)

    ck = sub.add_parser("check", help="gate a fresh run against a committed file")
    ck.add_argument("--jsonl", required=True, help="criterion FDB_BENCH_JSON output")
    ck.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    ck.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional speedup regression (default 0.20)")
    ck.set_defaults(fn=cmd_check)

    args = ap.parse_args()
    args.fn(args)


if __name__ == "__main__":
    main()
