#!/usr/bin/env python3
"""Assembles EXPERIMENTS.md from the experiment runner's output.

Usage: python3 tools/assemble_experiments.py experiments_full.md > EXPERIMENTS.md

Parses the `## <ID> — <title>` sections emitted by
`cargo run -p fdb-bench --bin experiments -- all` and interleaves them with
the per-experiment commentary below, so the document regenerates from a
fresh run in one step.
"""

import re
import sys

PREAMBLE = """# EXPERIMENTS — regenerated evaluation results

Every table below was produced by

```bash
cargo run --release -p fdb-bench --bin experiments -- all
```

(seeded, deterministic; CSVs in `results/`). The experiment definitions and
their mapping to modules are in DESIGN.md §3; the paper-text mismatch and
all hardware substitutions are documented at the top of DESIGN.md.

**Reading guide.** The original HotNets 2013 paper is a workshop design
piece with a small evaluation; we reproduce the *shape* of each claim —
who wins, by roughly what factor, where crossovers fall — on a simulated
substrate, not absolute testbed numbers. BER cells show the point estimate
with a 95 % Wilson interval. "Theory" columns are the closed-form models
from `fdb-analysis`, computed from the same configuration.

## Summary of claims vs outcomes

| Paper-level claim | Experiment | Outcome |
|---|---|---|
| Full-duplex feedback costs the forward link ~nothing (with SIC) | E1/E1B/E3 | **Holds.** FD and HD BER are statistically indistinguishable at every distance; without SIC the forward link collapses once ρ_B ≳ 0.2 |
| Feedback BER is set by the integration length (rate asymmetry works) | E2 | **Holds.** Measured BER tracks the `Q(s√(kN)/√2)` integrator model within ~1.3× over two orders of magnitude; m ≥ 64 shows zero errors (sample-limited upper CI) |
| Instantaneous NACK → early abort beats packet ARQ, growing with loss | E4/E5 | **Holds.** Goodput advantage 1.06× (clean) → ~7–28× (lossy); energy per delivered bit advantage 1.04→4.4×, and early abort keeps delivering where stop-and-wait has effectively stopped |
| Feedback enables collision detection for backscatter | E6 | **Holds.** FD-CD wastes ≤ ~5 % of busy time vs ~100 % for ALOHA under load; goodput stays ~2× ALOHA at 32 contenders |
| In-frame feedback enables rate adaptation | E7 | **Holds.** Steady-state adaptive goodput is 0.75–1.28× the best *oracle-chosen* fixed rate at every distance |
| Works on ambient sources (TV); quality depends on the source | E8 | **Holds.** CW ≥ wideband TV ≫ narrowband TV ≫ bursty OFDM (unusable) |
| Cheap tag clocks suffice | E9 | **Holds with the DLL.** Manchester + mid-bit DLL delivers at 8000 ppm; FM0 without a DLL dies by ~100 ppm |
| Battery-free operation feasible near broadcast infrastructure | E10/E13 | **Holds with ranges.** Harvesting sustains the tag to ~400–600 m from a 60 dBm tower; duty cycle and goodput roll off with income exactly as the model predicts |

---
"""

COMMENTARY = {
    "e1": """
**Commentary.** The headline claim: turning the feedback channel on costs
the forward link nothing measurable — the FD and HD columns agree within
their confidence intervals at every distance, including deep into the
failure regime. The theory column (chip-comparison model, which ignores
detector-RC ISI and timing jitter) is systematically ~3–4× optimistic but
tracks the shape of the cliff; the gap is the expected ISI/jitter excess.
Delivery dies between 0.5 m and 0.7 m at 1 kbps — consistent with the
2013-era prototypes' reported ~0.76 m.
""",
    "e1b": """
**Commentary.** Under Rician fading (K = 8, mobility) the cliff softens
into a shoulder: fade dips corrupt occasional blocks well inside the static
range (delivery < 1 from ~0.4 m) while lucky fades occasionally deliver
past the static wall. The FD ≈ HD equivalence survives fading, which is
the point of the experiment.
""",
    "e2": """
**Commentary.** The integrator model `Q(s·√(k·N_half)/√2)` predicts the
measured feedback BER within ~1.5× across three orders of magnitude —
strong evidence the rate-asymmetry mechanism (and the Gamma bandwidth
substitution behind it) is implemented faithfully. Two honest deviations:
(i) at m = 4 the pilot bits themselves err often, so the pilot-verify rate
collapses and surviving frames are a biased sample; (ii) at m ≥ 64 no
errors were observed — the measurement is sample-limited there (upper CI
~5·10⁻³ vs theory 3·10⁻⁵). The usable-m threshold at this weak operating
point (ρ_B = 0.03) is m ≈ 16–32.
""",
    "e2b": """
**Commentary.** Same shape 0.15 m further out: every point shifts up, the
usable-m threshold moves right (m ≈ 32–64) — integration length buys back
what distance takes away, at proportional cost in feedback rate.
""",
    "e3": """
**Commentary.** The ablation isolates *known-state* self-interference
cancellation. With SIC on, the forward link is flat in ρ_B up to 0.5
(data BER ≤ 10⁻⁴ at this strong operating point). With SIC off, the
receiver's own antenna toggles amplitude-modulate its detector and the
forward link collapses once ρ_B ≳ 0.2 — delivery 0 by ρ_B = 0.35. The
transmitter-side feedback decode degrades only mildly without SIC
(≈2–3 % BER) because the Manchester data is DC-balanced: the analog-domain
cancellation the paper's design actually relies on (see A1).
""",
    "e4": """
**Commentary.** PHY-backed protocol comparison. At negligible loss the FD
protocol wins ~1.06× by deleting the ACK frame and its two turnarounds. As
block loss grows the advantage compounds — early abort stops paying for
doomed airtime and never waits for timed-out ACKs — reaching ~28× at
p_block ≈ 0.23, where early abort still completes every transfer while
stop-and-wait completes one in five. The analytic advantage model is
conservative (it charges early abort a full post-frame verdict wait the
implementation short-circuits, and it models neither ACK loss nor attempt
exhaustion) but reproduces the trend. Note stop-and-wait's frame count
exploding (333 frames for 24 transfers) where early abort stays modest
(89).
""",
    "e5": """
**Commentary.** Same runs, energy ledgers. Early abort's energy advantage
grows from 1.04× (clean: only the ACK savings) through 1.7× at p ≈ 0.1 to
4.4× at 0.6 m — and the delivery columns understate the gap, since early
abort delivers 100 % of transfers at 0.55 m where stop-and-wait manages
29 %. The shape matches the paper's energy argument: energy burned on
doomed airtime (and on reverse ACK frames) is the dominant waste.
""",
    "e6": """
**Commentary.** Event-level multi-access model (its overlap ⇒ no-lock
assumption validated sample-level in `tests/collision_assumption.rs`).
ALOHA's waste fraction saturates at 1.0 — under load, essentially all
busy time is collisions — while FD-CD keeps waste ≤ ~5 % by cutting every
collision at the pilot window. Goodput ordering matches the renewal-model
columns; at 32 nodes FD-CD carries ~2× ALOHA's traffic on the same
channel.
""",
    "e7": """
**Commentary.** Steady-state (post-convergence) adaptive goodput sits at
0.75–1.28× the best fixed rate *chosen by an oracle per distance* — the
controller, fed only by in-frame feedback, roughly matches a genie that
knows the distance, across a 10× span of optimal rates. It exceeds 1.0 at
0.85 m where no single ladder rung is optimal (it time-shares adjacent
rungs); its worst point (0.75× at 0.55 m) is AIMD's usual caution tax.
""",
    "e8": """
**Commentary.** The excitation's envelope statistics are the noise floor.
CW (dedicated carrier) is error-free; wideband TV (k = 300, the realistic
ATSC case) costs ~10⁻⁴ BER; narrowband TV (k = 60) breaks acquisition half
the time; bursty OFDM never locks — its OFF gaps (hundreds of bits long)
starve the receiver mid-preamble, though its bursts harvest *more* energy
than steady sources (peaks clear the harvester's sensitivity floor). This
is the quantified version of the paper's "ride a TV tower, not Wi-Fi".
""",
    "e9": """
**Commentary.** The mid-bit timing DLL (possible because Manchester
guarantees a transition every bit) holds delivery at 1.0 through 8000 ppm
— far beyond any RC oscillator. FM0 without a DLL shows the textbook
drift cliff: fine at 0 ppm (modulo its own threshold-sensitivity, which
already costs delivery), degraded at 100 ppm, dead at 250+ where
accumulated drift exceeds half a chip mid-frame. (The 8000 ppm FM0 row
shows BER 0 over 0 bits: no frame even decoded a header.)
""",
    "e10": """
**Commentary.** Measured harvest matches the closed-form curve within a
few percent at every distance (300 vs 313 µW at 50 m). The harvester's
sensitivity floor (−20 dBm) sets a hard wall between 400 m and 800 m from
a 60 dBm tower; inside it, a 1 µW load can duty-cycle sustainably
(100 % → 29 % → 0). Rayleigh outage gives the fading-world version of the
same boundary. Delivery rate is flat across the sweep — data reception is
scale-invariant, only *energy* depends on the tower distance.
""",
    "e11": """
**Commentary.** Block-level flow-control model. In-band backpressure
(one-feedback-bit latency) keeps drops at effectively zero with
sub-0.1 % retransmission overhead; the blind sender drops thousands of
blocks and pays `1/drain − 1` retransmission overhead, exactly the queueing
prediction. Both achieve the same drain-limited goodput — the difference
is the wasted transmissions, which for a battery-free sender is the energy
story of E5 again.
""",
    "e12": """
**Commentary.** Two full-duplex pairs on the shared sample-level network.
Co-located pairs (0.5 m apart — cross-distances comparable to intra-pair)
destroy each other completely; by 2 m delivery is mostly restored and by
8 m the pairs are independent. Staggered starts outperform synchronised
ones in the transition region (synchronised preambles are the worst case
for acquisition, and the frame format carries no link addressing — a
documented limitation). Lock rates stay ~1.0 throughout: receivers *lock*
(often onto the wrong/composite waveform) but CRCs fail — interference
here corrupts payloads rather than preventing acquisition.
""",
    "e13": """
**Commentary.** The charge-and-fire controller (PHY-backed transfer costs,
closed-form harvest income) shows the three regimes: airtime-limited near
the tower (duty ≈ 0.99, goodput ≈ link rate ~510 bps), income-limited in
the middle (486 → 37 bps from 150 m to 400 m, tracking the ~75× income
drop through the efficiency knee), and dead past the sensitivity radius at
600 m. No brown-outs across the sweep: the adaptive cost estimate with a
1.5× safety factor keeps the bank solvent.
""",
    "a1": """
**Commentary.** The DC-balance ablation, run both with and without digital
SIC. With perfect known-state SIC the transmitter's feedback decode is
clean under *every* code — digital cancellation is exact regardless of
balance. With SIC off (the analog-only situation the 2013 design actually
describes), the feedback BER orders precisely by the codes' imbalance:
Manchester 2 % < FM0 5 % ≪ Miller 19 % < NRZ 38 % — DC balance *is* the
analog self-interference cancellation. Forward-data columns also show why
Manchester is the default: its self-referencing chip comparison beats the
absolute-threshold codes by ~30× in BER at this operating point.
""",
    "a2": """
**Commentary.** Block-size tradeoff under early abort at 0.5 m: small
blocks pay CRC-trailer overhead (20 % at 4 bytes), huge blocks lose whole
frames to single bit errors and blunt the NACK's localisation. The broad
optimum sits at 16–32 bytes (~620–650 bps) with ~1.4–1.7× goodput over
either extreme; 16 bytes is the default.
""",
    "a4": """
**Commentary.** The FEC-vs-ARQ crossover. Hamming(7,4) + depth-7
interleaving costs 1.75× airtime, so at short range plain CRC blocks win
(0.6×); at 0.5 m the curves cross; past 0.55 m coded blocks keep verifying
where the uncoded link has effectively died — ~50× goodput with full
delivery at 0.6–0.65 m (vs 12–19 % uncoded). For a deployment this argues
for coupling the FEC switch to the rate-adaptation controller (both
respond to the same distance signal).
""",
    "a3": """
**Commentary.** The extension the analysis model called for: with
full-frame retransmission, early abort's advantage decays on long frames
(both protocols pay E[attempts]·frame); resume-from-failed-block changes
the asymptotics by retransmitting only the unvouched tail. On 10-block
frames it matches plain early abort at low loss, pulls ahead (~1.4×) at
moderate loss and reaches ~17× once per-frame failure is near-certain
(0.55 m), where it is the only protocol still delivering every transfer
(1.00 vs 0.50 and 0.19).
""",
}

EPILOGUE = """
---

## Reproducibility notes

* Every run derives from fixed master seeds via splitmix; rerunning
  `experiments -- all` reproduces every table byte-for-byte
  (`tests/determinism.rs` additionally pins `measure_link` and the sweep
  machinery).
* `--quick` runs the same experiments at ~1/8 statistical weight for smoke
  testing.
* The theory columns are *predictions*, not fits: they are computed from
  the configuration before the simulation runs, and the agreement bands
  quoted above are enforced by `tests/theory_vs_sim.rs`.
"""


def main(path: str) -> None:
    text = open(path).read()
    # Split into sections on '## '.
    sections = re.split(r"^## ", text, flags=re.M)
    out = [PREAMBLE]
    for sec in sections:
        if not sec.strip():
            continue
        header, _, body = sec.partition("\n")
        ident = header.split(" ")[0].strip().lower()
        body = re.sub(r"\[csv written to [^\]]*\]\n?", "", body)
        out.append(f"## {header}\n{body.rstrip()}\n")
        if ident in COMMENTARY:
            out.append(COMMENTARY[ident].strip() + "\n")
        out.append("")
    out.append(EPILOGUE)
    sys.stdout.write("\n".join(out))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "experiments_full.md")
