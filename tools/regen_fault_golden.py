#!/usr/bin/env python3
"""Regenerate the fault-injection golden vectors in results/golden/.

Runs the probe's link report for each bundled fault plan against
configs/default_link.json (6 frames, default seed) and stores the
resulting LinkMetrics as pretty-printed JSON. The diff test
tests/fault_conformance.rs::golden_fault_vectors_match compares fresh
runs against these files field-for-field, so rerun this script whenever
a PHY change intentionally shifts the faulted metrics — and eyeball the
diff before committing.

Usage:  python3 tools/regen_fault_golden.py   (from the repo root)
"""

import json
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
PLANS = ["burst_collision", "drift_ramp", "sic_step"]
FRAMES = "6"


def regen(plan: str) -> None:
    cmd = [
        "cargo", "run", "--release", "-q", "-p", "fdb-bench", "--bin", "probe", "--",
        "--report", "link",
        "--config", "configs/default_link.json",
        "--faults", f"configs/faults/{plan}.json",
        "--frames", FRAMES,
    ]
    out = subprocess.run(cmd, cwd=ROOT, check=True, capture_output=True, text=True)
    summary = json.loads(out.stdout.splitlines()[0])
    dest = ROOT / "results" / "golden" / f"fault_{plan}.json"
    dest.parent.mkdir(parents=True, exist_ok=True)
    dest.write_text(json.dumps(summary["metrics"], indent=2) + "\n")
    print(f"wrote {dest.relative_to(ROOT)}")


def main() -> int:
    for plan in PLANS:
        regen(plan)
    return 0


if __name__ == "__main__":
    sys.exit(main())
