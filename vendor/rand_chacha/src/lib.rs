//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! This implements the genuine ChaCha block function (8 rounds) keyed from
//! the 32-byte seed, so the statistical properties match the real crate.
//! The exact output stream is NOT bit-compatible with the `rand_chacha`
//! registry crate (word ordering and counter layout differ slightly), which
//! is fine here: the workspace only requires determinism per seed and good
//! seed dispersion, never cross-crate reproducibility.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// Deterministic seeded RNG driven by a ChaCha8 keystream.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (8 words) as loaded from the seed.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    word_idx: usize,
}

/// Alias: the workspace only distinguishes ChaCha variants by name.
pub type ChaCha12Rng = ChaCha8Rng;
/// Alias: the workspace only distinguishes ChaCha variants by name.
pub type ChaCha20Rng = ChaCha8Rng;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = s;
        for _ in 0..CHACHA_ROUNDS / 2 {
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (w, init) in s.iter_mut().zip(initial.iter()) {
            *w = w.wrapping_add(*init);
        }
        self.block = s;
        self.word_idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            word_idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_idx >= 16 {
            self.refill();
        }
        let w = self.block[self.word_idx];
        self.word_idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn adjacent_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniformish_unit_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
