//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Each `proptest!` test runs its body over `ProptestConfig::cases`
//! deterministically seeded samples (seed derived from the test name, so
//! failures reproduce run-to-run). Differences from real proptest, all
//! acceptable for this workspace's invariant checks:
//!
//! * no shrinking — a failing case panics with its inputs via the normal
//!   assert message instead of a minimized counterexample;
//! * strategies are plain samplers (`Strategy::sample_value`), not
//!   lazily-built search trees;
//! * `prop_assert*` are the std `assert*` macros (panic, not `Err`).

pub mod test_runner {
    /// Deterministic splitmix64 sampler behind every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seeds from a test name: stable across runs and processes.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A sampleable input source. The real proptest builds shrinkable
    /// value trees; this stand-in only ever draws concrete values.
    pub trait Strategy {
        type Value;

        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            (**self).sample_value(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        choices: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
            Union { choices }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].sample_value(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start as f64
                        + rng.next_f64() * (self.end as f64 - self.start as f64);
                    if v as $t >= self.end { self.start } else { v as $t }
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let mag = (rng.next_f64() * 600.0 - 300.0).exp2();
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Length bound for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample_value(rng)).collect()
        }
    }
}

pub mod sample {
    use super::arbitrary::Arbitrary;
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// An opaque "index into any collection" (real proptest's
    /// `prop::sample::Index`): resolve with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps onto `0..len`; panics when `len == 0` (as upstream does).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }

    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone + std::fmt::Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty list");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; these PHY-simulation properties
        // are comparatively slow, so the stand-in trades depth for wall
        // time. Override per-test with `#![proptest_config(...)]`.
        ProptestConfig { cases: 32 }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current sampled case when the assumption does not hold.
///
/// Upstream proptest rejects the input and draws a replacement (with a
/// rejection budget); this stand-in simply moves on to the next case of
/// the `proptest!` loop, which keeps the same "only test valid inputs"
/// semantics at the cost of running slightly fewer effective cases.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let choices: ::std::vec::Vec<::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>> =
            ::std::vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(choices)
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__cfg.cases {
                let ($($pat,)*) = (
                    $($crate::strategy::Strategy::sample_value(&($strat), &mut __rng),)*
                );
                $body
            }
        }
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Mirrors real proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            x in 3usize..10,
            f in 0.5f64..2.0,
            v in prop::collection::vec(any::<u8>(), 2..5),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
            prop_assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_controls_cases(_x in 0u8..255) {
            // Body runs; case count is implicit in coverage of the macro path.
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        use crate::strategy::Strategy;
        let s = prop_oneof![
            (0u32..10).prop_map(|v| v as i64),
            (100u32..110).prop_map(|v| -(v as i64)),
        ];
        let mut rng = crate::test_runner::TestRng::from_seed(5);
        let mut saw_pos = false;
        let mut saw_neg = false;
        for _ in 0..200 {
            let v = s.sample_value(&mut rng);
            assert!((0..10).contains(&v) || (-109..=-100).contains(&v));
            saw_pos |= v >= 0;
            saw_neg |= v < 0;
        }
        assert!(saw_pos && saw_neg, "union never picked both arms");
    }

    #[test]
    fn select_and_index_work() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::from_seed(11);
        let s = crate::sample::select(vec![3usize, 5, 7]);
        for _ in 0..50 {
            assert!([3, 5, 7].contains(&s.sample_value(&mut rng)));
        }
        let idx = crate::arbitrary::any::<crate::sample::Index>().sample_value(&mut rng);
        assert!(idx.index(4) < 4);
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("foo");
        let mut b = crate::test_runner::TestRng::for_test("foo");
        let mut c = crate::test_runner::TestRng::for_test("bar");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
