//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Value`].
//!
//! Text is produced from / parsed into the vendored serde's [`Value`]
//! tree. Floats are written with Rust's shortest-round-trip formatting, so
//! `serialize → parse` reproduces every finite `f64` exactly; NaN and
//! infinities serialize as `null` (matching serde_json's lossy behaviour
//! for non-finite floats).

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Keep the number a JSON *number* that parses back as a float when
        // it carries no fraction (e.g. 1.0 → "1.0", not "1").
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, pretty: bool, indent: usize) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            out.push_str(&"  ".repeat(n));
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Uint(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value(out, item, pretty, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_escaped(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, pretty, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), false, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), true, 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> DeError {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        DeError(format!("{msg} at line {line} column {col}"))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn consume_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("dangling escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs unsupported (never produced by
                            // our writer); map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >> 5 == 0b110 => 2,
                        _ if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Uint(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, DeError> {
        if depth > 128 {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => {
                if self.consume_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.consume_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.consume_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

/// Parses JSON text into a [`Value`] tree.
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters").into());
    }
    Ok(v)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = value_from_str(s)?;
    T::from_value(&v).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "\"hi\\n\""] {
            let v = value_from_str(text).unwrap();
            let back = to_string(&v).unwrap();
            assert_eq!(value_from_str(&back).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn float_exact_round_trip() {
        for f in [0.1, 1.0, -2.5e-9, 539e6, f64::MIN_POSITIVE, 1e300] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a": [1, 2.5, {"b": null}], "c": "x\"y", "d": {}}"#;
        let v = value_from_str(text).unwrap();
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(value_from_str(&compact).unwrap(), v);
        assert_eq!(value_from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn errors_carry_position() {
        let e = value_from_str("{\"a\": }").unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        assert!(value_from_str("[1, 2,]").is_err());
        assert!(value_from_str("").is_err());
        assert!(value_from_str("1 2").is_err());
    }

    #[test]
    fn unicode_passes_through() {
        let v = value_from_str("\"héllo ☃\"").unwrap();
        assert_eq!(v, Value::Str("héllo ☃".to_string()));
        let s = to_string(&v).unwrap();
        assert_eq!(value_from_str(&s).unwrap(), v);
    }
}
