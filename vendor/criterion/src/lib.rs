//! Offline stand-in for the subset of the `criterion` API this workspace's
//! benches use. Runs each benchmark for a fixed wall-clock budget and
//! prints `name  <mean time>  (<throughput>)` lines — no statistics,
//! plots, or baseline comparisons, but the same source compiles and the
//! numbers are usable for coarse regression checks.
//!
//! Two environment variables extend the real criterion's CLI surface:
//!
//! - `FDB_BENCH_JSON=<path>`: append one JSON line per benchmark
//!   (`{"name":…,"mean_s":…,"iters_per_sample":…,"throughput_elements":…}`)
//!   to `<path>`, for machine consumption by `tools/bench_check.py`.
//! - `FDB_BENCH_QUICK=1`: quick mode — shrink the per-sample calibration
//!   budget and sample count so a full bench binary finishes in seconds.
//!   Absolute times get noisy but within-process ratios stay usable, which
//!   is what the CI smoke gate compares.

use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), None, 20, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.throughput, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    calibration_budget: Duration,
    /// Mean seconds per iteration, filled by `iter`.
    mean_s: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until one batch meets the time budget.
        let budget = self.calibration_budget;
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= budget || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        self.iters_per_sample = batch;
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64() / batch as f64;
            best = best.min(dt);
        }
        self.mean_s = best;
    }
}

/// Quick mode: `FDB_BENCH_QUICK` set to anything but `0` / empty.
fn quick_mode() -> bool {
    std::env::var("FDB_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// One machine-readable result line (JSON object, no trailing newline).
fn json_line(name: &str, throughput: Option<Throughput>, mean_s: f64, iters: u64) -> String {
    let mut line = String::from("{\"name\":\"");
    // The bench names this workspace produces are plain ASCII identifiers
    // plus '/', but escape the JSON-significant characters anyway.
    for ch in name.chars() {
        match ch {
            '"' => line.push_str("\\\""),
            '\\' => line.push_str("\\\\"),
            c if (c as u32) < 0x20 => line.push_str(&format!("\\u{:04x}", c as u32)),
            c => line.push(c),
        }
    }
    line.push_str("\",\"mean_s\":");
    if mean_s.is_finite() {
        line.push_str(&format!("{mean_s:e}"));
    } else {
        line.push_str("null");
    }
    line.push_str(&format!(",\"iters_per_sample\":{iters}"));
    match throughput {
        Some(Throughput::Elements(n)) => line.push_str(&format!(",\"throughput_elements\":{n}")),
        Some(Throughput::Bytes(n)) => line.push_str(&format!(",\"throughput_bytes\":{n}")),
        None => {}
    }
    line.push('}');
    line
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: F,
) {
    let (samples, calibration_budget) = if quick_mode() {
        (samples.min(3), Duration::from_micros(200))
    } else {
        (samples, Duration::from_millis(1))
    };
    let mut b = Bencher {
        iters_per_sample: 0,
        samples,
        calibration_budget,
        mean_s: f64::NAN,
    };
    f(&mut b);
    let time = format_time(b.mean_s);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if b.mean_s > 0.0 => {
            format!("  {:.3} Melem/s", n as f64 / b.mean_s / 1e6)
        }
        Some(Throughput::Bytes(n)) if b.mean_s > 0.0 => {
            format!("  {:.3} MiB/s", n as f64 / b.mean_s / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("{name:<48} {time}{rate}   ({} iters/sample)", b.iters_per_sample);
    if let Ok(path) = std::env::var("FDB_BENCH_JSON") {
        if !path.is_empty() {
            let line = json_line(name, throughput, b.mean_s, b.iters_per_sample);
            match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
                Ok(mut file) => {
                    if let Err(e) = writeln!(file, "{line}") {
                        eprintln!("criterion: failed writing {path}: {e}");
                    }
                }
                Err(e) => eprintln!("criterion: failed opening {path}: {e}"),
            }
        }
    }
}

fn format_time(s: f64) -> String {
    if !s.is_finite() {
        "      n/a".to_string()
    } else if s >= 1.0 {
        format!("{s:>8.3} s")
    } else if s >= 1e-3 {
        format!("{:>7.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:>7.3} µs", s * 1e6)
    } else {
        format!("{:>7.3} ns", s * 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(4)).sample_size(2);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn json_line_round_trips_fields() {
        let l = json_line("sync/ncc_320", Some(Throughput::Elements(4096)), 1.5e-6, 256);
        assert_eq!(
            l,
            "{\"name\":\"sync/ncc_320\",\"mean_s\":1.5e-6,\
             \"iters_per_sample\":256,\"throughput_elements\":4096}"
        );
        let l = json_line("crc/crc8_1k", Some(Throughput::Bytes(1024)), 2.0e-7, 64);
        assert!(l.contains("\"throughput_bytes\":1024"));
        let l = json_line("x", None, f64::NAN, 0);
        assert!(l.contains("\"mean_s\":null"));
        assert!(!l.contains("throughput"));
    }

    #[test]
    fn json_line_escapes_metacharacters() {
        let l = json_line("a\"b\\c\nd", None, 1.0, 1);
        assert!(l.contains("a\\\"b\\\\c\\u000ad"));
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2.0).contains('s'));
        assert!(format_time(2e-3).contains("ms"));
        assert!(format_time(2e-6).contains("µs"));
        assert!(format_time(2e-9).contains("ns"));
    }
}
