//! Offline stand-in for the subset of the `criterion` API this workspace's
//! benches use. Runs each benchmark for a fixed wall-clock budget and
//! prints `name  <mean time>  (<throughput>)` lines — no statistics,
//! plots, or baseline comparisons, but the same source compiles and the
//! numbers are usable for coarse regression checks.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), None, 20, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.throughput, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Mean seconds per iteration, filled by `iter`.
    mean_s: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until one batch takes ≥ ~1 ms.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        self.iters_per_sample = batch;
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64() / batch as f64;
            best = best.min(dt);
        }
        self.mean_s = best;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: F,
) {
    let mut b = Bencher {
        iters_per_sample: 0,
        samples,
        mean_s: f64::NAN,
    };
    f(&mut b);
    let time = format_time(b.mean_s);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if b.mean_s > 0.0 => {
            format!("  {:.3} Melem/s", n as f64 / b.mean_s / 1e6)
        }
        Some(Throughput::Bytes(n)) if b.mean_s > 0.0 => {
            format!("  {:.3} MiB/s", n as f64 / b.mean_s / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("{name:<48} {time}{rate}   ({} iters/sample)", b.iters_per_sample);
}

fn format_time(s: f64) -> String {
    if !s.is_finite() {
        "      n/a".to_string()
    } else if s >= 1.0 {
        format!("{s:>8.3} s")
    } else if s >= 1e-3 {
        format!("{:>7.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:>7.3} µs", s * 1e6)
    } else {
        format!("{:>7.3} ns", s * 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(4)).sample_size(2);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2.0).contains('s'));
        assert!(format_time(2e-3).contains("ms"));
        assert!(format_time(2e-6).contains("µs"));
        assert!(format_time(2e-9).contains("ns"));
    }
}
