//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented with a hand-rolled token walk (no `syn`/`quote` — the build
//! environment is offline). Supported shapes, which cover every derived
//! type in this workspace:
//!
//! * structs with named fields (including empty `{}` and unit structs);
//! * enums whose variants are unit or struct-like (named fields), using
//!   serde's externally-tagged representation;
//! * the `#[serde(default)]` and `#[serde(default = "path")]` field
//!   attributes (the latter calls the named function for a missing field,
//!   as real serde does).
//!
//! Tuple structs, tuple variants, and generic types are rejected with a
//! compile-time panic naming the offender.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled in.
#[derive(Clone)]
enum FieldDefault {
    /// Field is required; missing is an error.
    None,
    /// `#[serde(default)]` — `Default::default()`.
    Std,
    /// `#[serde(default = "path")]` — call `path()`.
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

enum Shape {
    /// Named fields (empty for unit structs).
    Struct(Vec<Field>),
    /// (variant name, None = unit | Some(fields) = struct variant).
    Enum(Vec<(String, Option<Vec<Field>>)>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Extracts the default policy from a `serde(...)` attribute group body:
/// `serde(default)` → [`FieldDefault::Std`], `serde(default = "path")` →
/// [`FieldDefault::Path`]; anything else → [`FieldDefault::None`].
fn attr_serde_default(body: &[TokenTree]) -> FieldDefault {
    let args = match body {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => {
            args.stream().into_iter().collect::<Vec<TokenTree>>()
        }
        _ => return FieldDefault::None,
    };
    for (i, t) in args.iter().enumerate() {
        if !matches!(t, TokenTree::Ident(id) if id.to_string() == "default") {
            continue;
        }
        // `default = "path"`?
        if let (
            Some(TokenTree::Punct(eq)),
            Some(TokenTree::Literal(lit)),
        ) = (args.get(i + 1), args.get(i + 2))
        {
            if eq.as_char() == '=' {
                let s = lit.to_string();
                let path = s.trim_matches('"');
                if path.len() < s.len() {
                    return FieldDefault::Path(path.to_string());
                }
            }
        }
        return FieldDefault::Std;
    }
    FieldDefault::None
}

/// Consumes leading `#[...]` attributes; reports the field's
/// `#[serde(default…)]` policy, if any.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, FieldDefault) {
    let mut default = FieldDefault::None;
    while let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if matches!(default, FieldDefault::None) {
                default = attr_serde_default(&body);
            }
            i += 2;
        } else {
            break;
        }
    }
    (i, default)
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_fields(stream: TokenStream, owner: &str) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, default) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, ni);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde derive: unexpected token `{other}` in fields of {owner}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde derive: {owner} has unsupported (tuple?) fields"),
        }
        // Skip the type: everything until a top-level (angle-depth 0) comma.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // consume the comma (or run off the end, fine)
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(stream: TokenStream, owner: &str) -> Vec<(String, Option<Vec<Field>>)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, _) = skip_attrs(&tokens, i);
        i = ni;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                panic!("serde derive: unexpected token `{other}` in variants of {owner}")
            }
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_fields(g.stream(), owner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde derive: tuple variant {owner}::{name} is not supported")
            }
            _ => None,
        };
        // Skip an optional discriminant, then the separating comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
            i += 1;
        }
        i += 1;
        variants.push((name, fields));
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let (ni, _) = skip_attrs(&tokens, i);
                i = ni;
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                i += 1; // pub, crate, etc.
            }
            Some(TokenTree::Group(_)) => i += 1, // pub(crate) group
            Some(other) => panic!("serde derive: unexpected token `{other}`"),
            None => panic!("serde derive: no struct/enum found"),
        }
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("serde derive: missing type name"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic type {name} is not supported");
    }
    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_fields(g.stream(), &name))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Vec::new()),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde derive: tuple struct {name} is not supported")
            }
            _ => panic!("serde derive: malformed struct {name}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream(), &name))
            }
            _ => panic!("serde derive: malformed enum {name}"),
        }
    };
    Item { name, shape }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut entries = String::new();
            for f in fields {
                entries.push_str(&format!(
                    "(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})),",
                    f = f.name
                ));
            }
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    None => arms.push_str(&format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    )),
                    Some(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut entries = String::new();
                        for f in &binds {
                            entries.push_str(&format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f})),"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Object(::std::vec![{entries}]))]),",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Field initializers for a named-field constructor read from object `obj`,
/// with `ctx` naming the surrounding type/variant in error messages.
fn field_inits(fields: &[Field], ctx: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let missing = match &f.default {
            FieldDefault::Std => "::std::default::Default::default()".to_string(),
            FieldDefault::Path(path) => format!("{path}()"),
            FieldDefault::None => {
                format!("::serde::Deserialize::from_missing(\"{ctx}.{f}\")?", f = f.name)
            }
        };
        out.push_str(&format!(
            "{f}: match ::serde::__get(obj, \"{f}\") {{\n\
             Some(x) => ::serde::Deserialize::from_value(x).map_err(|e| \
             ::serde::DeError(::std::format!(\"{ctx}.{f}: {{}}\", e)))?,\n\
             None => {missing},\n\
             }},",
            f = f.name
        ));
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits = field_inits(fields, name);
            format!(
                "let obj = match v {{\n\
                 ::serde::Value::Object(m) => m.as_slice(),\n\
                 other => return Err(::serde::DeError::expected(\"object ({name})\", other)),\n\
                 }};\n\
                 #[allow(unused_variables)] let obj = obj;\n\
                 Ok({name} {{ {inits} }})"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, fields) in variants {
                match fields {
                    None => unit_arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),")),
                    Some(fields) => {
                        let inits = field_inits(fields, &format!("{name}::{v}"));
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let obj = match inner {{\n\
                             ::serde::Value::Object(m) => m.as_slice(),\n\
                             other => return Err(::serde::DeError::expected(\
                             \"object ({name}::{v})\", other)),\n\
                             }};\n\
                             #[allow(unused_variables)] let obj = obj;\n\
                             Ok({name}::{v} {{ {inits} }})\n\
                             }},"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(::serde::DeError(::std::format!(\
                 \"unknown variant `{{}}` of {name}\", other))),\n\
                 }},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = &m[0];\n\
                 #[allow(unused_variables)] let inner = inner;\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\n\
                 other => Err(::serde::DeError(::std::format!(\
                 \"unknown variant `{{}}` of {name}\", other))),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::DeError::expected(\
                 \"string or single-key object ({name})\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}
