//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `RngCore`, `Rng::{gen, gen_range, gen_bool}`, `SeedableRng`, and
//! the `Standard` distribution for primitive types.
//!
//! The build environment has no registry access, so the real crate cannot
//! be fetched; this crate keeps the workspace source-compatible with it.
//! Statistical quality targets simulation use (uniformity, long period,
//! seed dispersion) — it is NOT a cryptographic RNG.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut iter = dest.chunks_exact_mut(8);
        for chunk in &mut iter {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = iter.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution for primitive types: full range
    /// for integers and bools, `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }
}

/// A range that a uniform value can be drawn from (the subset of
/// `rand::distributions::uniform::SampleRange` the workspace needs).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u: f64 = distributions::Distribution::sample(&distributions::Standard, rng);
                let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                // Rounding can land exactly on `end`; fold it back inside.
                if v as $t >= self.end { self.start } else { v as $t }
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing random value methods, blanket-implemented for every
/// `RngCore` (matching rand 0.8's `impl<R: RngCore + ?Sized> Rng for R`).
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        let u: f64 = self.gen();
        u < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, with the `seed_from_u64` splitmix expansion the
/// real crate documents (so small integer seeds disperse well).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn float_range_stays_inside() {
        let mut rng = Lcg(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&v));
        }
    }

    #[test]
    fn int_range_stays_inside() {
        let mut rng = Lcg(9);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = Lcg(11);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(13);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Lcg(15);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
