//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The real serde models serialization through visitor-based `Serializer`
//! and `Deserializer` traits; every type this repository serializes goes
//! through JSON, so this stand-in collapses the data model to one concrete
//! [`Value`] tree:
//!
//! * [`Serialize`] renders `self` into a [`Value`];
//! * [`Deserialize`] rebuilds `Self` from a [`Value`];
//! * the companion `serde_json` stand-in converts [`Value`] to/from text.
//!
//! The `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! local `serde_derive`) cover structs with named fields and enums with
//! unit or struct variants, in serde's externally-tagged representation,
//! plus the `#[serde(default)]` field attribute.

pub use serde_derive::{Deserialize, Serialize};

/// In-memory JSON-shaped value: the single data model of the stand-in.
///
/// Object fields keep insertion order (a `Vec`, not a map), so serialized
/// output is deterministic and mirrors struct declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative or explicitly signed integers.
    Int(i64),
    /// Non-negative integers.
    Uint(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// First value stored under `key` in an object (None otherwise).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::Uint(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error (also reused by `serde_json` for parse errors).
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Render into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called when an object field is absent. Mirrors serde's behaviour:
    /// only `Option` (→ `None`) tolerates a missing field; everything else
    /// errors unless the field carries `#[serde(default)]`.
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError(format!("missing field `{field}`")))
    }
}

/// Derive-macro helper: ordered-object key lookup.
#[doc(hidden)]
pub fn __get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

fn int_from_value(v: &Value) -> Result<i128, DeError> {
    match v {
        Value::Int(i) => Ok(*i as i128),
        Value::Uint(u) => Ok(*u as i128),
        Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Ok(*f as i128),
        _ => Err(DeError::expected("integer", v)),
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Value::Int(*self as i64)
                } else {
                    Value::Uint(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = int_from_value(v)?;
                <$t>::try_from(i).map_err(|_| {
                    DeError(format!("integer {i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::Uint(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN), // serde_json emits null for NaN
                    _ => Err(DeError::expected("number", v)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for std::borrow::Cow<'_, str> {
    fn to_value(&self) -> Value {
        Value::Str(self.as_ref().to_owned())
    }
}

impl Deserialize for std::borrow::Cow<'_, str> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(std::borrow::Cow::Owned(s.clone())),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expect = [$(stringify!($n)),+].len();
                        if items.len() != expect {
                            return Err(DeError(format!(
                                "expected tuple of length {expect}, got {}",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(DeError::expected("array (tuple)", v)),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_tolerates_missing_field() {
        assert_eq!(Option::<u32>::from_missing("x").unwrap(), None);
        assert!(u32::from_missing("x").is_err());
    }

    #[test]
    fn numeric_cross_acceptance() {
        assert_eq!(f64::from_value(&Value::Uint(3)).unwrap(), 3.0);
        assert_eq!(u32::from_value(&Value::Float(4.0)).unwrap(), 4);
        assert!(u32::from_value(&Value::Float(4.5)).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }

    #[test]
    fn object_get_finds_keys() {
        let v = Value::Object(vec![
            ("a".into(), Value::Uint(1)),
            ("b".into(), Value::Bool(true)),
        ]);
        assert_eq!(v.get("b"), Some(&Value::Bool(true)));
        assert_eq!(v.get("c"), None);
    }
}
