//! A battery-free sensor pushing readings uplink: early abort vs ARQ.
//!
//! The motivating application: a passive sensor must deliver periodic
//! 96-byte reports over a marginal link. This example transfers the same
//! reports with classic stop-and-wait (full frame + turnaround + ACK frame
//! per attempt) and with the full-duplex early-abort protocol, then prints
//! the goodput and energy-per-bit comparison.
//!
//! ```text
//! cargo run --release --example sensor_early_abort
//! ```

use fd_backscatter::prelude::*;
use rand::{Rng, SeedableRng};

fn main() {
    let reports = 12;
    let report_len = 96;
    // A marginal link: 0.55 m separation, individual blocks fail regularly.
    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = 0.55;
    let fs = cfg.phy.sample_rate_hz;

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
    let mut sw = StopAndWait::new(
        cfg.clone(),
        ArqConfig {
            max_attempts: 16,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("sw session");
    let mut ea = EarlyAbortArq::new(
        cfg,
        EarlyAbortConfig {
            max_attempts: 16,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("ea session");

    let mut sw_reports: Vec<TransferReport> = Vec::new();
    let mut ea_reports: Vec<TransferReport> = Vec::new();
    println!("transferring {reports} sensor reports of {report_len} bytes at 0.55 m…\n");
    println!("report | stop-and-wait        | early-abort FD");
    println!("       | frames  acks  result | frames  aborts result");
    for i in 0..reports {
        let payload: Vec<u8> = (0..report_len).map(|_| rng.gen()).collect();
        let r1 = sw.transfer(&payload, &mut rng).expect("sw transfer");
        let r2 = ea.transfer(&payload, &mut rng).expect("ea transfer");
        println!(
            "  {:>3}  | {:>5} {:>6}  {:<6} | {:>5} {:>6}  {:<6}",
            i,
            r1.frames_sent,
            r1.ack_frames_sent,
            if r1.delivered { "ok" } else { "FAIL" },
            r2.frames_sent,
            r2.aborts,
            if r2.delivered { "ok" } else { "FAIL" },
        );
        sw_reports.push(r1);
        ea_reports.push(r2);
    }

    let agg = |rs: &[TransferReport]| -> (f64, f64, f64) {
        let bits: u64 = rs
            .iter()
            .filter(|r| r.delivered)
            .map(|r| (r.payload_bytes * 8) as u64)
            .sum();
        let samples: u64 = rs.iter().map(|r| r.elapsed_samples).sum();
        let energy: f64 = rs.iter().map(|r| r.energy_a_j + r.energy_b_j).sum();
        let goodput = if samples == 0 {
            0.0
        } else {
            bits as f64 / (samples as f64 / fs)
        };
        let epb = if bits == 0 {
            f64::INFINITY
        } else {
            energy / bits as f64
        };
        let delivered = rs.iter().filter(|r| r.delivered).count() as f64 / rs.len() as f64;
        (goodput, epb, delivered)
    };
    let (g_sw, e_sw, d_sw) = agg(&sw_reports);
    let (g_ea, e_ea, d_ea) = agg(&ea_reports);

    println!("\n== summary ==");
    println!("stop-and-wait : {g_sw:8.1} bps, {:.2} nJ/bit, {:.0}% delivered", e_sw * 1e9, d_sw * 100.0);
    println!("early-abort   : {g_ea:8.1} bps, {:.2} nJ/bit, {:.0}% delivered", e_ea * 1e9, d_ea * 100.0);
    if g_sw > 0.0 && e_ea > 0.0 {
        println!(
            "advantage     : {:.2}× goodput, {:.2}× energy per bit",
            g_ea / g_sw,
            e_sw / e_ea
        );
    }
}
