//! Many contending tags: collision detection through the feedback channel.
//!
//! Two views of the same mechanism:
//!
//! 1. **Sample level** — a 3-device `BackscatterNetwork` shows *why*
//!    overlapping transmissions kill reception: the receiver cannot even
//!    acquire the preamble when two devices reflect simultaneously.
//! 2. **Network level** — the event-level multi-access simulation compares
//!    ALOHA (whole frames burned per collision) against full-duplex
//!    collision detection (collisions cost only the pilot window).
//!
//! ```text
//! cargo run --release --example collision_network
//! ```

use fd_backscatter::phy::config::PhyConfig;
use fd_backscatter::phy::network::{BackscatterNetwork, NetworkConfig};
use fd_backscatter::phy::rx::{DataReceiver, RxState};
use fd_backscatter::phy::tx::DataTransmitter;
use fd_backscatter::mac::csma::{run as run_csma, AccessMode, CsmaConfig};
use fd_backscatter::device::TagConfig;
use rand::SeedableRng;

fn lock_with_interferer(interferer_active: bool) -> bool {
    let phy = PhyConfig::default_fd();
    let dt = phy.sample_period_s();
    let mut cfg = NetworkConfig::ring(3, 0.3, TagConfig::typical(dt));
    cfg.ambient = fd_backscatter::ambient::AmbientConfig::TvWideband { k_factor: 300.0 };
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let mut net = BackscatterNetwork::new(&cfg, dt).expect("network");

    // Device 0 transmits a frame; device 2 receives; device 1 may interfere
    // with its own transmission, unsynchronised (it starts 137 samples
    // later — real contenders share no chip clock).
    let mut tx0 = DataTransmitter::new(&phy, &[0xAB; 24]).expect("tx0");
    let mut tx1 = DataTransmitter::new(&phy, &[0x55; 24]).expect("tx1");
    let interferer_delay = 137;
    let mut rx = DataReceiver::new(phy.clone());
    let total = tx0.total_samples() + 200;
    for t in 0..total {
        let s0 = tx0.next_state().unwrap_or(false);
        let s1 = interferer_active && t >= interferer_delay && tx1.next_state().unwrap_or(false);
        let envs = net.step(&[s0, s1, false], &mut rng);
        rx.push_sample(envs[2]);
    }
    rx.state() != RxState::Acquiring
}

fn main() {
    println!("== sample-level: can the receiver lock? ==");
    let clean = lock_with_interferer(false);
    let collided = lock_with_interferer(true);
    println!("single transmitter : lock = {clean}");
    println!("two transmitters   : lock = {collided}   (collision ⇒ no pilots ⇒ FD transmitter aborts)");

    println!("\n== network-level: throughput under contention ==");
    println!("nodes | ALOHA goodput | FD-CD goodput | ALOHA waste | FD-CD waste");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    for n in [2usize, 4, 8, 16, 32] {
        let mut aloha_cfg = CsmaConfig::default_with(n, AccessMode::Aloha);
        aloha_cfg.arrival_per_bit = 4e-5;
        aloha_cfg.horizon_bits = 1_000_000;
        let mut fd_cfg = aloha_cfg;
        fd_cfg.mode = AccessMode::FdCollisionDetect;
        let aloha = run_csma(&aloha_cfg, &mut rng);
        let fd = run_csma(&fd_cfg, &mut rng);
        println!(
            "{n:>5} | {:>13.3} | {:>13.3} | {:>11.3} | {:>11.3}",
            aloha.goodput_fraction(aloha_cfg.frame_bits),
            fd.goodput_fraction(fd_cfg.frame_bits),
            aloha.waste_fraction(),
            fd.waste_fraction(),
        );
    }
    println!("\n(goodput = fraction of channel time carrying delivered frames)");
}
