//! A battery-free data logger: bank energy, wake, stream a log chunk.
//!
//! Combines the streaming session layer (chunked reliable transfer with
//! sequence numbers) with the charge-and-fire duty-cycle controller: the
//! logger sleeps until its harvested bank covers a transfer, streams the
//! next log segment, and goes back to sleep. Run at two source distances
//! to see the income-limited regime.
//!
//! ```text
//! cargo run --release --example datalogger_stream
//! ```

use fd_backscatter::analysis::harvest::HarvestModel;
use fd_backscatter::channel::pathloss::PathLoss;
use fd_backscatter::dsp::sample::dbm_to_watts;
use fd_backscatter::mac::duty::{DutyCycleController, DutyConfig};
use fd_backscatter::mac::stream::{StreamConfig, StreamProtocol, StreamSession};
use fd_backscatter::prelude::*;
use rand::SeedableRng;

fn run_at(source_dist_m: f64, log: &[u8]) {
    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.source_dist_a_m = source_dist_m;
    cfg.geometry.source_dist_b_m = source_dist_m;
    let fs = cfg.phy.sample_rate_hz;

    let harvester = HarvestModel {
        sensitivity_w: 1e-5,
        saturation_w: 3.16e-4,
        max_efficiency: 0.4,
    };
    let incident =
        dbm_to_watts(cfg.geometry.source_power_dbm) * PathLoss::tv_band().gain(source_dist_m);
    let income = harvester.harvested_w(incident);

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let mut session = StreamSession::new(
        cfg,
        StreamConfig {
            chunk_bytes: 60,
            protocol: StreamProtocol::Resume,
            max_attempts: 16,
        },
        &mut rng,
    )
    .expect("session");
    let mut duty = DutyCycleController::new(DutyConfig::default());

    println!("\n== logger at {source_dist_m} m from the tower ==");
    println!(
        "incident {:.2} µW → harvest income {:.2} µW",
        incident * 1e6,
        income * 1e6
    );

    let mut wall_s = 0.0;
    let mut delivered = 0usize;
    for (i, segment) in log.chunks(60).enumerate() {
        match duty.sleep_until_ready(income) {
            Some(t) => wall_s += t,
            None => {
                println!("segment {i}: TAG DEAD (income below sleep load)");
                return;
            }
        }
        let r = session.send(segment, &mut rng).expect("send");
        let dur = r.transfer.elapsed_samples as f64 / fs;
        wall_s += dur;
        duty.fire(
            r.transfer.energy_a_j + r.transfer.energy_b_j,
            dur,
            income,
        );
        if r.complete {
            delivered += segment.len();
        }
        println!(
            "segment {i}: slept then sent {} B in {:.2} s airtime, bank {:.1} µJ, {}",
            segment.len(),
            dur,
            duty.stored_j() * 1e6,
            if r.complete { "delivered" } else { "LOST" }
        );
    }
    let (fired, brown) = duty.counts();
    println!(
        "summary: {delivered}/{} bytes in {:.1} s wall ({:.2} bps sustained), {} transfers, {} brown-outs, {:.1} % duty",
        log.len(),
        wall_s,
        delivered as f64 * 8.0 / wall_s,
        fired,
        brown,
        (wall_s - duty.slept_s()) / wall_s * 100.0
    );
}

fn main() {
    let log: Vec<u8> = (0..300u16).map(|i| (i % 251) as u8).collect();
    run_at(150.0, &log); // comfortable harvesting
    run_at(400.0, &log); // income-starved
}
