//! A link that adapts its rate as the devices drift apart.
//!
//! Walks device B away from device A in steps while an AIMD controller,
//! fed only by the in-frame feedback stream, picks the chip rate. Prints
//! the adaptation trace: distance, chosen rate, delivery, throughput.
//!
//! ```text
//! cargo run --release --example rate_adaptive_link
//! ```

use fd_backscatter::mac::rate_adapt::RateController;
use fd_backscatter::prelude::*;
use rand::{Rng, SeedableRng};

fn link_at(distance_m: f64, sps: usize, rng: &mut rand_chacha::ChaCha8Rng) -> FdLink {
    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = distance_m;
    cfg.phy.samples_per_chip = sps;
    FdLink::new(cfg, rng).expect("link")
}

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2014);
    let mut ctrl = RateController::default_ladder();
    let payload_len = 64;
    let frames_per_step = 8;

    println!("walking the devices apart; the controller sees only feedback…\n");
    println!("distance | frame | rate    | outcome   | nack%  | action");
    for step in 0..8 {
        let distance = 0.25 + 0.1 * step as f64;
        let mut link = link_at(distance, ctrl.current_sps(), &mut rng);
        for frame in 0..frames_per_step {
            let payload: Vec<u8> = (0..payload_len).map(|_| rng.gen()).collect();
            let out = link
                .run_frame(&payload, &RunOptions::fd_monitor(), &mut rng)
                .expect("frame");
            let clean = out.fully_delivered();
            let nacks = out.feedback.iter().filter(|f| !f.bit).count();
            let nack_frac = if out.feedback.is_empty() {
                1.0
            } else {
                nacks as f64 / out.feedback.len() as f64
            };
            let rate_bps = 20_000.0 / (ctrl.current_sps() * 2) as f64;
            let before = ctrl.current_sps();
            let decision = ctrl.on_frame(clean, nack_frac);
            println!(
                "  {distance:.2} m |  {frame:>3}  | {rate_bps:>5.0}bps | {:<9} | {:>5.1}% | {:?}",
                if clean { "delivered" } else { "corrupted" },
                nack_frac * 100.0,
                decision,
            );
            if ctrl.current_sps() != before {
                link = link_at(distance, ctrl.current_sps(), &mut rng);
            }
        }
    }
    println!(
        "\nfinal rate: {} bps (sps = {})",
        20_000 / (ctrl.current_sps() * 2),
        ctrl.current_sps()
    );
}
