//! Quickstart: one full-duplex frame, narrated.
//!
//! Builds the default scenario (TV tower 1 km away, two passive devices
//! half a metre apart), sends one frame from device A to device B while B
//! streams live ACK/NACK feedback in-band, and prints everything that
//! happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fd_backscatter::prelude::*;
use rand::SeedableRng;

fn main() {
    let cfg = LinkConfig::default_fd();
    println!("== scenario ==");
    println!(
        "ambient source : {:?} at {} dBm, {} m / {} m from the devices",
        cfg.ambient,
        cfg.geometry.source_power_dbm,
        cfg.geometry.source_dist_a_m,
        cfg.geometry.source_dist_b_m
    );
    println!(
        "devices        : {} m apart, rho_data = {}, rho_feedback = {}",
        cfg.geometry.device_dist_m, cfg.tag_a.rho, cfg.tag_b.rho
    );
    println!(
        "PHY            : {} bps data ({:?}), {} bps feedback (m = {})",
        cfg.phy.data_rate_bps(),
        cfg.phy.line_code,
        cfg.phy.feedback_rate_bps(),
        cfg.phy.feedback_ratio
    );

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2013);
    let mut link = FdLink::new(cfg.clone(), &mut rng).expect("valid config");

    let payload = b"full-duplex backscatter: the receiver talks back mid-frame".to_vec();
    println!("\n== sending {} bytes, full duplex ==", payload.len());
    let out = link
        .run_frame(&payload, &RunOptions::fd_monitor(), &mut rng)
        .expect("frame run");

    println!("B locked           : {}", out.b_locked);
    println!("pilots verified    : {}", out.pilots_verified);
    println!(
        "delivered          : {} ({}/{} blocks ok)",
        out.fully_delivered(),
        out.blocks_ok(),
        out.blocks_total()
    );
    if let Some(res) = &out.delivered {
        println!(
            "payload readback   : {:?}",
            String::from_utf8_lossy(&res.payload)
        );
    }
    println!(
        "airtime            : {} samples ({:.1} ms)",
        out.airtime_samples,
        out.airtime_samples as f64 / cfg.phy.sample_rate_hz * 1e3
    );
    println!("feedback timeline  : (sample, bit, margin)");
    for f in out.feedback.iter().take(8) {
        println!(
            "   t={:>6}  {}  margin {:.3e}",
            f.sample,
            if f.bit { "ACK " } else { "NACK" },
            f.margin
        );
    }
    if out.feedback.len() > 8 {
        println!("   … {} more", out.feedback.len() - 8);
    }
    println!(
        "energy             : A spent {:.2} µJ, B spent {:.2} µJ, B harvested {:.3} µJ",
        out.energy.a_consumed_j * 1e6,
        out.energy.b_consumed_j * 1e6,
        out.energy.b_harvested_j * 1e6
    );
}
