//! Helpers for exercising the frame-trace diagnostics layer in tests and
//! ad-hoc debugging (available with the `trace` feature).
//!
//! The typical loop while root-causing a failure:
//!
//! 1. [`run_seeded_frame`] reproduces one frame deterministically;
//! 2. [`trace_jsonl`] turns its trace into grep-able JSON lines;
//! 3. narrow by stage with [`FrameTrace::stage_events`] and compare a
//!    failing seed against a passing one.

use fdb_core::link::{FdLink, FrameOutcome, LinkConfig, RunOptions};
use fdb_core::trace::{FrameTrace, TraceSink};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs one deterministic frame over `cfg` and returns its outcome (which
/// carries the [`FrameTrace`]). The payload is a fixed `i % 251` ramp so a
/// given `(cfg, seed, payload_len)` triple always replays identically —
/// the same contract the `probe` CLI uses.
pub fn run_seeded_frame(
    cfg: LinkConfig,
    seed: u64,
    payload_len: usize,
    opts: &RunOptions,
) -> FrameOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut link = FdLink::new(cfg, &mut rng).expect("valid link config");
    let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
    link.run_frame(&payload, opts, &mut rng).expect("frame runs")
}

/// Like [`run_seeded_frame`], but streams the frame's events into a
/// caller-supplied [`TraceSink`] (bracketed as frame 0) instead of the
/// outcome's in-memory ring.
pub fn run_seeded_frame_into(
    cfg: LinkConfig,
    seed: u64,
    payload_len: usize,
    opts: &RunOptions,
    sink: &mut dyn TraceSink,
) -> FrameOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut link = FdLink::new(cfg, &mut rng).expect("valid link config");
    let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
    sink.begin_frame(0);
    let out = link
        .run_frame_with(
            &payload,
            opts,
            &mut rng,
            fdb_core::link::FrameRun::clean().with_sink(sink),
        )
        .expect("frame runs");
    sink.end_frame();
    out
}

/// Serialises every trace event to one JSON line (the probe CLI format).
pub fn trace_jsonl(trace: &FrameTrace) -> Vec<String> {
    trace
        .events()
        .map(|ev| serde_json::to_string(ev).expect("trace event serializes"))
        .collect()
}
