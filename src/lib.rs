//! # fd-backscatter — full-duplex backscatter communication, in simulation
//!
//! A production-quality Rust reproduction of the HotNets 2013 paper *"Full
//! Duplex Backscatter"*: a PHY in which a backscatter receiver transmits a
//! low-rate, in-band feedback stream **while receiving a frame**, plus the
//! link-layer machinery that feedback unlocks (early packet abort,
//! collision detection, backpressure, rate adaptation) and a complete
//! physical substrate (ambient sources, channels, tag hardware) to run it
//! all on.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names and offers a [`prelude`] for the common types. See
//! `DESIGN.md` for the architecture and `EXPERIMENTS.md` for the
//! evaluation suite.
//!
//! ## Quick start
//!
//! ```
//! use fd_backscatter::prelude::*;
//! use rand::SeedableRng;
//!
//! // A clean scenario: CW carrier, two devices half a metre apart.
//! let mut cfg = LinkConfig::default_fd();
//! cfg.ambient = AmbientConfig::Cw;
//! cfg.field_noise_dbm = -160.0;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let mut link = FdLink::new(cfg, &mut rng).unwrap();
//!
//! // Send one frame full-duplex: B streams ACK/NACK while receiving.
//! let payload = b"hello, backscatter".to_vec();
//! let out = link
//!     .run_frame(&payload, &RunOptions::fd_monitor(), &mut rng)
//!     .unwrap();
//! assert!(out.fully_delivered());
//! assert!(out.feedback.iter().all(|f| f.bit)); // all-ACK feedback
//! ```

#![deny(missing_docs)]

/// DSP substrate: samples, filters, line codes, sync, CRC/FEC, statistics.
pub use fdb_dsp as dsp;

/// Wireless channel substrate: path loss, fading, noise, link budgets.
pub use fdb_channel as channel;

/// Ambient RF excitation sources (TV, OFDM, CW, recorded).
pub use fdb_ambient as ambient;

/// Passive-tag hardware models: antenna switch, detector, harvester, clock.
pub use fdb_device as device;

/// The full-duplex backscatter PHY (the paper's contribution).
pub use fdb_core as phy;

/// Link layer: ARQ baselines, early abort, collision detection, flow
/// control, rate adaptation.
pub use fdb_mac as mac;

/// Scenario running, parallel sweeps, reporting.
pub use fdb_sim as sim;

/// Closed-form performance models and theory-vs-simulation validators.
pub use fdb_analysis as analysis;

/// Trace-layer helpers for tests and debugging (`trace` feature only).
#[cfg(feature = "trace")]
pub mod testing;

/// The types most programs need.
pub mod prelude {
    pub use fdb_ambient::AmbientConfig;
    pub use fdb_channel::fading::Fading;
    pub use fdb_channel::pathloss::PathLoss;
    pub use fdb_core::config::{PhyConfig, SicMode};
    pub use fdb_core::link::{
        FdLink, FeedbackPolicy, FrameOutcome, FrameRun, LinkConfig, LinkGeometry, RunOptions,
    };
    pub use fdb_core::trace::TraceSinkSpec;
    pub use fdb_device::{TagConfig, TagHardware};
    pub use fdb_mac::arq::{ArqConfig, StopAndWait};
    pub use fdb_mac::early_abort::{EarlyAbortArq, EarlyAbortConfig};
    pub use fdb_mac::report::TransferReport;
    pub use fdb_sim::{run_link, LinkMetrics, LinkRun, MeasureSpec};
}
