//! Property-based conformance of the event-driven city engine: arbitrary
//! bounded scenario specs must validate, run without panicking, keep the
//! conservation ledger (`offered == delivered + lost + pending`) per tag
//! and in aggregate, never move simulated time backwards, survive a
//! serde round-trip bit-exactly, and be **extension-stable** — running
//! the same spec to a longer horizon reproduces the shorter run as an
//! exact prefix. The directed suite (`tests/city_scale.rs`) pins one
//! golden trajectory; this covers the spec corners we didn't hand-pick.

use fdb_mac::csma::AccessMode;
use fdb_mac::duty::DutyConfig;
use fdb_sim::city::{CityEngine, CityReport, CityScenarioSpec};
use proptest::prelude::*;

/// Bounded-but-varied scenarios: up to 7 active tags among up to 63 idle
/// ones, areas from near-colocated (heavy contention) to 40 m sprawl,
/// horizons of 5–90 simulated seconds, both access modes, pools down to
/// a single slot (worst-case deferral pressure). The duty estimate is
/// lowered so tags afford their first frame inside the horizon.
fn arb_spec() -> impl Strategy<Value = CityScenarioSpec> {
    (
        (
            any::<u64>(),
            1u32..8,
            0u32..64,
            0.5f64..40.0,
            5.0f64..90.0,
            1.0f64..30.0,
        ),
        (
            1u32..4,
            8usize..96,
            1u32..6,
            64u64..1024,
            1usize..8,
            0.0f64..20.0,
        ),
        prop_oneof![
            Just(AccessMode::Aloha),
            Just(AccessMode::FdCollisionDetect)
        ],
    )
        .prop_map(
            |(
                (seed, n_active, n_idle, area_m, sim_duration_s, mean_interarrival_s),
                (burst_arrivals, payload_len, max_attempts, backoff_min_bits, pool, margin),
                mode,
            )| {
                CityScenarioSpec {
                    label: "prop".into(),
                    seed,
                    n_active,
                    n_idle,
                    area_m,
                    sim_duration_s,
                    mean_interarrival_s,
                    burst_arrivals,
                    payload_len,
                    mode,
                    max_attempts,
                    backoff_min_bits,
                    pool,
                    collision_margin_db: margin,
                    log_frames: true,
                    duty: DutyConfig {
                        initial_cost_estimate_j: 5e-6,
                        ..DutyConfig::default()
                    },
                    ..CityScenarioSpec::default()
                }
            },
        )
}

/// The ledger consistency shared by every property: conservation per tag
/// and in total, frame records in event-pop (time) order, and counter
/// sanity that would expose double-accounting.
fn check_report(spec: &CityScenarioSpec, r: &CityReport) {
    prop_assert!(
        r.totals.conserved(),
        "conservation violated: {:?}",
        r.totals
    );
    prop_assert_eq!(r.ledgers.len(), spec.n_active as usize);
    let mut totals_offered = 0u64;
    for l in &r.ledgers {
        prop_assert_eq!(
            l.offered,
            l.delivered + l.lost + l.pending,
            "tag {} ledger does not conserve: {:?}",
            l.tag,
            l
        );
        prop_assert!(
            l.collisions + l.phy_failures <= l.attempts,
            "tag {} failure counters exceed attempts: {:?}",
            l.tag,
            l
        );
        prop_assert!(l.aborts <= l.collisions, "aborts without collisions: {:?}", l);
        totals_offered += l.offered;
    }
    prop_assert_eq!(totals_offered, r.totals.offered, "totals drift from ledgers");
    // The queue never goes back in time: completion records are emitted
    // in event-pop order, so their ticks must be non-decreasing.
    for w in r.frames.windows(2) {
        prop_assert!(
            w[0].tick <= w[1].tick,
            "frame records regressed in time: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
    for f in &r.frames {
        prop_assert!(
            f.tick <= r.horizon_ticks,
            "frame completion past horizon: {:?}",
            f
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any bounded spec validates, runs to completion, and leaves a
    /// consistent ledger — no panic, no conservation drift, no
    /// time-travel in the event order.
    #[test]
    fn bounded_specs_run_clean(spec in arb_spec()) {
        spec.validate().expect("bounded spec must validate");
        let report = CityEngine::run(&spec).expect("bounded spec must run");
        prop_assert!(report.events_processed > 0, "engine processed no events");
        check_report(&spec, &report);
    }

    /// Spec and report both survive a serde round-trip: the re-parsed
    /// spec produces the identical trajectory, and the serialized report
    /// parses back equal (the golden-diff test depends on both).
    #[test]
    fn serde_round_trip_preserves_trajectory(spec in arb_spec()) {
        let spec_json = serde_json::to_string(&spec).expect("serialize spec");
        let reparsed: CityScenarioSpec =
            serde_json::from_str(&spec_json).expect("re-parse spec");
        prop_assert_eq!(
            serde_json::to_string(&reparsed).expect("re-serialize spec"),
            spec_json,
            "spec round-trip is not bit-stable"
        );
        let a = CityEngine::run(&spec).expect("original spec runs");
        let b = CityEngine::run(&reparsed).expect("re-parsed spec runs");
        prop_assert_eq!(&a, &b, "re-parsed spec diverged");
        let report_json = serde_json::to_string(&a).expect("serialize report");
        let back: CityReport = serde_json::from_str(&report_json).expect("re-parse report");
        prop_assert_eq!(back, a, "report round-trip lost information");
    }

    /// Extension stability: simulating to `T + dt` reproduces the run to
    /// `T` as an exact prefix — per-attempt records and event schedule
    /// included. This is what makes horizon choice a pure view decision
    /// rather than part of the scenario's identity.
    #[test]
    fn longer_horizon_extends_shorter(spec in arb_spec(), dt in 1.0f64..45.0) {
        let short = CityEngine::run(&spec).expect("short run");
        let mut longer_spec = spec.clone();
        longer_spec.sim_duration_s += dt;
        let long = CityEngine::run(&longer_spec).expect("long run");
        prop_assert!(
            long.events_processed >= short.events_processed,
            "extension lost events: {} then {}",
            short.events_processed,
            long.events_processed
        );
        prop_assert!(
            long.frames.len() >= short.frames.len(),
            "extension lost frame records"
        );
        prop_assert_eq!(
            &long.frames[..short.frames.len()],
            &short.frames[..],
            "short run is not a prefix of the extended run"
        );
        check_report(&longer_spec, &long);
    }
}
