//! Theory-vs-simulation validators: the closed-form models in
//! `fdb-analysis` must predict what the sample-level stack measures.
//! Agreement here is the repository's main defence against silent
//! simulation bugs (and against silently wrong models).

use fd_backscatter::analysis::ber::{relative_swing, LinkNoiseModel};
use fd_backscatter::prelude::*;
use fd_backscatter::channel::budget::BackscatterBudget;
use fd_backscatter::channel::pathloss::PathLoss;

fn noise_model(cfg: &LinkConfig) -> LinkNoiseModel {
    let k = match cfg.ambient {
        AmbientConfig::TvWideband { k_factor } => k_factor,
        _ => panic!("test expects the wideband TV source"),
    };
    LinkNoiseModel {
        k_factor: k,
        samples_per_chip: cfg.phy.samples_per_chip,
        detector_noise_rel: 0.0,
    }
}

fn fb_swing(cfg: &LinkConfig) -> f64 {
    let g = &cfg.geometry;
    relative_swing(
        g.pathloss_device.amplitude_gain(g.device_dist_m),
        cfg.tag_b.rho,
        cfg.tag_b.rho_residual,
        g.pathloss_source.gain(g.source_dist_b_m),
        g.pathloss_source.gain(g.source_dist_a_m),
    )
}

#[test]
fn feedback_ber_matches_integrator_model() {
    // Weak-feedback operating point where errors are measurable: the
    // integrate-and-dump model is essentially exact here (the feedback
    // path has no ISI and SIC removes the only systematic).
    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = 0.7;
    cfg.tag_b.rho = 0.03;
    cfg.phy.feedback_ratio = 8;
    let spec = MeasureSpec {
        frames: 24,
        payload_len: 192,
        seed: 0x7EED,
        feedback_probe: Some(true),
        trace: Default::default(),
        faults: None,
    };
    let measured = run_link(&cfg, &spec, LinkRun::new()).unwrap();
    let half_samples = (cfg.phy.feedback_ratio / 2) * cfg.phy.samples_per_bit();
    let predicted = noise_model(&cfg).feedback_ber(fb_swing(&cfg), half_samples);
    let ber = measured.feedback_ber.ber();
    assert!(
        ber > 0.0,
        "operating point too strong to validate ({} bits)",
        measured.feedback_ber.bits()
    );
    // Within a factor of two — generous but meaningful at BER ~ 0.05–0.15.
    assert!(
        ber / predicted < 2.0 && predicted / ber < 2.0,
        "measured {ber} vs predicted {predicted}"
    );
}

#[test]
fn data_ber_tracks_model_shape_with_distance() {
    // The chip-comparison model ignores ISI and timing jitter, so it is
    // systematically optimistic — but the *ratio* between two distances
    // must match the model's ratio direction and rough magnitude.
    let measure = |d: f64| {
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = d;
        let m = run_link(
            &cfg,
            &MeasureSpec {
                frames: 12,
                payload_len: 96,
                seed: 0xD157,
                feedback_probe: None,
                trace: Default::default(),
                faults: None,
            },
            LinkRun::new(),
        )
        .unwrap();
        let g = &cfg.geometry;
        let swing = relative_swing(
            g.pathloss_device.amplitude_gain(d),
            cfg.tag_a.rho,
            cfg.tag_a.rho_residual,
            g.pathloss_source.gain(g.source_dist_a_m),
            g.pathloss_source.gain(g.source_dist_b_m),
        );
        (m.data_ber.ber(), noise_model(&cfg).manchester_ber(swing))
    };
    let (ber_near, pred_near) = measure(0.6);
    let (ber_far, pred_far) = measure(0.9);
    assert!(ber_far > ber_near, "BER must grow with distance");
    assert!(pred_far > pred_near);
    // Model must be optimistic (it ignores ISI/jitter), not pessimistic,
    // and within ~20× at both points.
    for (ber, pred) in [(ber_near, pred_near), (ber_far, pred_far)] {
        assert!(ber >= pred * 0.5, "model pessimistic: {ber} vs {pred}");
        assert!(ber <= pred * 20.0, "model wildly off: {ber} vs {pred}");
    }
}

#[test]
fn link_budget_matches_measured_envelope() {
    // The budget arithmetic and the sample-level fields must agree on the
    // incident power at a device.
    use fd_backscatter::channel::budget::DirectBudget;
    let cfg = LinkConfig::default_fd();
    let budget = DirectBudget {
        tx_dbm: cfg.geometry.source_power_dbm,
        pathloss: cfg.geometry.pathloss_source,
        distance_m: cfg.geometry.source_dist_b_m,
    };
    let expected_w = budget.rx_watts();

    // Run a short frame and compare B's harvest-side input: mean envelope
    // ≈ incident power (unit-mean source, pass fraction ≈ 1 while idle).
    let spec = MeasureSpec {
        frames: 2,
        payload_len: 16,
        seed: 0xB0D6,
        feedback_probe: None,
        trace: Default::default(),
        faults: None,
    };
    let m = run_link(&cfg, &spec, LinkRun::new()).unwrap();
    // Harvested energy is zero below sensitivity (the default tower is
    // 1 km away), so check the budget against the harvester threshold
    // instead: it must be below sensitivity here.
    assert!(m.harvested_b_j == 0.0);
    assert!(expected_w < 1e-5, "budget says {expected_w} W incident");

    // Closer in, harvesting turns on and the measured average power into
    // the harvester approaches the budget prediction.
    let mut near = cfg.clone();
    near.geometry.source_dist_a_m = 100.0;
    near.geometry.source_dist_b_m = 100.0;
    let m = run_link(&near, &spec, LinkRun::new()).unwrap();
    let near_budget = DirectBudget {
        distance_m: 100.0,
        ..budget
    };
    let secs = m.elapsed_samples as f64 / near.phy.sample_rate_hz;
    let harvested_w = m.harvested_b_j / secs;
    // η = 0.4 at saturation; pass fraction ~1; allow a broad band because
    // the efficiency curve bends near this operating point.
    let bound_hi = near_budget.rx_watts() * 0.45;
    let bound_lo = near_budget.rx_watts() * 0.1;
    assert!(
        harvested_w > bound_lo && harvested_w < bound_hi,
        "harvested {harvested_w:.3e} W vs incident {:.3e} W",
        near_budget.rx_watts()
    );
}

#[test]
fn backscatter_budget_reflects_swing_model() {
    // relative_swing and BackscatterBudget::relative_swing are two routes
    // to the same quantity; they must agree.
    let cfg = LinkConfig::default_fd();
    let g = &cfg.geometry;
    let b = BackscatterBudget {
        src_dbm: g.source_power_dbm,
        src_tag: (g.pathloss_source, g.source_dist_a_m),
        tag_rx: (g.pathloss_device, g.device_dist_m),
        rho: cfg.tag_a.rho,
    };
    let direct_rx = g.source_power_dbm - PathLoss::tv_band().loss_db(g.source_dist_b_m);
    let via_budget = b.relative_swing(direct_rx);
    let via_model = relative_swing(
        g.pathloss_device.amplitude_gain(g.device_dist_m),
        cfg.tag_a.rho,
        0.0, // the budget form has no residual term
        g.pathloss_source.gain(g.source_dist_a_m),
        g.pathloss_source.gain(g.source_dist_b_m),
    );
    assert!(
        (via_budget / via_model - 1.0).abs() < 1e-9,
        "{via_budget} vs {via_model}"
    );
}
