//! Integration tests for the frame-trace diagnostics layer.
//!
//! Run with `cargo test --features trace`; the whole file compiles away
//! otherwise.
#![cfg(feature = "trace")]

use fd_backscatter::prelude::*;
use fd_backscatter::testing::{run_seeded_frame, trace_jsonl};

fn quiet_cfg() -> LinkConfig {
    let mut cfg = LinkConfig::default_fd();
    cfg.ambient = fd_backscatter::ambient::AmbientConfig::Cw;
    cfg.field_noise_dbm = -160.0;
    cfg
}

#[test]
fn fd_frame_trace_covers_every_stage() {
    let out = run_seeded_frame(quiet_cfg(), 11, 64, &RunOptions::fd_monitor());
    assert!(out.fully_delivered(), "clean FD frame must deliver");
    for stage in ["tx", "channel", "sic", "rx", "feedback"] {
        assert!(
            out.trace.stage_events(stage).next().is_some(),
            "no `{stage}` events in a full-duplex frame trace"
        );
    }
    assert!(!out.trace.is_empty());
}

#[test]
fn half_duplex_trace_has_no_feedback_events() {
    let out = run_seeded_frame(quiet_cfg(), 12, 32, &RunOptions::half_duplex());
    assert!(out.fully_delivered());
    assert_eq!(
        out.trace.stage_events("feedback").count(),
        0,
        "half-duplex frames must not record feedback-decode events"
    );
    assert!(out.trace.stage_events("rx").next().is_some());
}

#[test]
fn trace_is_deterministic_for_a_seed() {
    let a = run_seeded_frame(quiet_cfg(), 13, 48, &RunOptions::fd_monitor());
    let b = run_seeded_frame(quiet_cfg(), 13, 48, &RunOptions::fd_monitor());
    let ea: Vec<_> = a.trace.events().collect();
    let eb: Vec<_> = b.trace.events().collect();
    assert_eq!(ea, eb, "same seed must replay an identical trace");
}

#[test]
fn trace_serialises_to_jsonl_and_tags_stages() {
    let out = run_seeded_frame(quiet_cfg(), 14, 32, &RunOptions::fd_monitor());
    let lines = trace_jsonl(&out.trace);
    assert_eq!(lines.len(), out.trace.len());
    for line in &lines {
        let v: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("trace line is not valid JSON ({e:?}): {line}"));
        drop(v);
        assert!(line.contains("\"sample\""), "no sample field: {line}");
    }
}

#[test]
fn observer_captures_first_failing_frame_trace() {
    // At a marginal distance some frames fail; an observer attachment can
    // clone the ring trace of the first one that did (what the removed
    // `measure_link_traced` wrapper used to hard-code).
    use fd_backscatter::phy::trace::FrameTrace;

    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = 0.8; // far: reliably lossy
    let spec = MeasureSpec {
        frames: 6,
        payload_len: 64,
        seed: 5,
        feedback_probe: Some(false),
        trace: Default::default(),
        faults: None,
    };
    let mut first_failure: Option<FrameTrace> = None;
    let mut observe = |_: u64, out: &FrameOutcome| {
        if first_failure.is_none() && !out.fully_delivered() {
            first_failure = Some(out.trace.clone());
        }
    };
    let metrics = run_link(&cfg, &spec, LinkRun::new().with_observe(&mut observe)).unwrap();
    assert_eq!(metrics.frames, 6);
    if metrics.fully_delivered < metrics.frames {
        let trace = first_failure.expect("a failing frame must carry its trace");
        assert!(!trace.is_empty(), "captured trace is empty");
    } else {
        assert!(first_failure.is_none());
    }
}
