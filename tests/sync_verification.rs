//! Two-stage acquisition robustness: the lock decision must hold across
//! the whole `sync_threshold` band [0.60, 0.72] — equal-power collisions
//! rejected AND the marginal link still locking at every point. PR 1
//! achieved the first property only at a tuned 0.67 (lone peaks 0.72–0.85
//! vs collision peaks up to ~0.66, ~0.01 of margin); with the peak-shape
//! gate and preamble re-decode doing the discrimination, the scalar
//! threshold is free to sit anywhere in the band.

use fd_backscatter::ambient::AmbientConfig;
use fd_backscatter::device::TagConfig;
use fd_backscatter::phy::config::PhyConfig;
use fd_backscatter::phy::network::{BackscatterNetwork, NetworkConfig};
use fd_backscatter::phy::rx::{DataReceiver, RxState};
use fd_backscatter::phy::tx::DataTransmitter;
use fd_backscatter::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The band the sweep covers; the old implementation only worked at 0.67.
const THRESHOLDS: [f64; 5] = [0.60, 0.63, 0.66, 0.69, 0.72];

/// Runs device 0's frame towards device 2 in a 3-ring; device 1 interferes
/// from `interferer_offset` samples in (usize::MAX = never). Returns the
/// receiver for inspection.
fn run_collision(phy: &PhyConfig, interferer_offset: usize, seed: u64) -> DataReceiver {
    let dt = phy.sample_period_s();
    let mut cfg = NetworkConfig::ring(3, 0.3, TagConfig::typical(dt));
    cfg.ambient = AmbientConfig::TvWideband { k_factor: 300.0 };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net = BackscatterNetwork::new(&cfg, dt).unwrap();

    let mut tx0 = DataTransmitter::new(phy, &[0xAB; 16]).unwrap();
    let mut tx1 = DataTransmitter::new(phy, &[0x55; 16]).unwrap();
    let mut rx = DataReceiver::new(phy.clone());
    let total = tx0.total_samples() + 200;
    for t in 0..total {
        let s0 = tx0.next_state().unwrap_or(false);
        let s1 = t >= interferer_offset && tx1.next_state().unwrap_or(false);
        let envs = net.step(&[s0, s1, false], &mut rng);
        rx.push_sample(envs[2]);
    }
    rx
}

/// Whether a committed lock survived to the end of the stream.
fn committed_lock_survives(phy: &PhyConfig, interferer_offset: usize, seed: u64) -> bool {
    let state = run_collision(phy, interferer_offset, seed).state();
    state == RxState::Done || state == RxState::Receiving
}

#[test]
fn collision_rejected_and_lone_locked_across_threshold_band() {
    for &thr in &THRESHOLDS {
        let mut phy = PhyConfig::default_fd();
        phy.sync_threshold = thr;
        // Lone transmitter must lock at every threshold in the band.
        for seed in [1u64, 2] {
            assert!(
                committed_lock_survives(&phy, usize::MAX, seed),
                "lone transmitter failed to lock at threshold {thr} (seed {seed})"
            );
        }
        // Unsynchronised equal-power overlap must break acquisition.
        let mut broken = 0;
        let cases = [(37usize, 10u64), (137, 11), (233, 12)];
        for &(offset, seed) in &cases {
            if !committed_lock_survives(&phy, offset, seed) {
                broken += 1;
            }
        }
        assert!(
            broken >= 2,
            "collisions survived verification at threshold {thr}: only {broken}/{} rejected",
            cases.len()
        );
    }
}

#[test]
fn verification_rejects_candidates_the_scalar_threshold_admits() {
    // At the sensitive end of the band, collision correlation peaks
    // (0.61–0.66 here) genuinely cross the scalar threshold — the
    // discrimination must come from verification, not the constant. With
    // the legacy trusting policy those same candidates become committed
    // false locks that burn the whole header before dying.
    use fd_backscatter::phy::config::SyncPolicy;
    let cases = [(37usize, 10u64), (137, 11), (233, 12)];

    let mut phy = PhyConfig::default_fd();
    phy.sync_threshold = 0.60;
    let mut candidates = 0;
    for &(offset, seed) in &cases {
        let rx = run_collision(&phy, offset, seed);
        candidates += rx.sync_attempts();
        assert_eq!(
            rx.sync_attempts(),
            rx.sync_rejections(),
            "a collision candidate was committed (offset {offset})"
        );
        assert_ne!(rx.state(), RxState::Done, "collision decoded (offset {offset})");
        assert_ne!(rx.state(), RxState::Receiving, "collision locked (offset {offset})");
    }
    assert!(
        candidates >= 2,
        "only {candidates} collision candidates crossed threshold 0.60 — the \
         verification stages were never exercised"
    );

    // Control: the trusting policy commits at least one of those candidates.
    let mut trusting = PhyConfig::default_fd();
    trusting.sync_threshold = 0.60;
    trusting.sync = SyncPolicy::trusting();
    let committed_falsely = cases
        .iter()
        .filter(|&&(offset, seed)| {
            let rx = run_collision(&trusting, offset, seed);
            // A trusting receiver that committed a garbage lock dies in
            // Failed on the first bad header.
            rx.state() == RxState::Failed
        })
        .count();
    assert!(
        committed_falsely >= 1,
        "trusting policy no longer false-locks — the control lost its premise"
    );
}

#[test]
fn marginal_link_locks_across_threshold_band() {
    // The 0.55 m ARQ operating point from the MAC suite: the regime the
    // tuned 0.67 threshold nearly cut off.
    let frames = 4;
    for &thr in &THRESHOLDS {
        let mut cfg = LinkConfig::default_fd();
        cfg.geometry.device_dist_m = 0.55;
        cfg.phy.sync_threshold = thr;
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut link = FdLink::new(cfg, &mut rng).unwrap();
        let mut locked = 0;
        for _ in 0..frames {
            let out = link
                .run_frame(&[0x5A; 48], &RunOptions::fd_monitor(), &mut rng)
                .unwrap();
            locked += u32::from(out.b_locked);
        }
        assert!(
            locked >= frames - 1,
            "marginal link locked only {locked}/{frames} at threshold {thr}"
        );
    }
}

#[test]
fn false_lock_recovery_across_threshold_band() {
    // A corrupted-header frame (false lock) followed by a clean frame:
    // the re-arm path must recover the clean frame at every threshold.
    for &thr in &THRESHOLDS {
        let mut phy = PhyConfig::default_fd();
        phy.sync_threshold = thr;
        let mut tx_junk = DataTransmitter::new(&phy, &[0xAA; 8]).unwrap();
        let mut wave = vec![0.3f64; 40];
        while let Some(state) = tx_junk.next_state() {
            wave.push(if state { 1.0 } else { 0.3 });
        }
        let pre = 40 + phy.preamble.len() * phy.samples_per_bit();
        let hdr_samples = 42 * phy.samples_per_bit();
        for v in wave.iter_mut().skip(pre).take(hdr_samples) {
            *v = 0.65;
        }
        wave.extend(vec![0.3; 100]);
        let payload: Vec<u8> = (0..32u8).collect();
        let mut tx = DataTransmitter::new(&phy, &payload).unwrap();
        while let Some(state) = tx.next_state() {
            wave.push(if state { 1.0 } else { 0.3 });
        }
        wave.extend(vec![0.3; phy.samples_per_bit() * 2]);

        let mut rx = DataReceiver::new(phy.clone());
        for &v in &wave {
            rx.push_sample(v);
        }
        assert_eq!(
            rx.state(),
            RxState::Done,
            "clean frame lost after false lock at threshold {thr}"
        );
        assert_eq!(rx.take_result().unwrap().payload, payload, "threshold {thr}");
    }
}
