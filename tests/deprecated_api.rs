//! Regression guard for the deprecated pre-0.2 entry points: every
//! `#[deprecated]` wrapper must stay a zero-cost alias of its
//! [`run_link`]/[`FdLink::run_frame_with`] replacement — same random
//! stream consumption, byte-identical metrics JSON. Pre-PR call sites
//! that have not migrated yet must keep producing the exact numbers they
//! produced before the redesign.

#![allow(deprecated)]

use fd_backscatter::prelude::*;
use fd_backscatter::sim::faults::FaultPlan;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn lossy_cfg() -> LinkConfig {
    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = 0.7; // enough loss to make divergence visible
    cfg
}

fn spec(seed: u64) -> MeasureSpec {
    MeasureSpec {
        frames: 5,
        payload_len: 48,
        seed,
        ..MeasureSpec::default()
    }
}

/// `measure_link` (deprecated) vs `run_link` with no attachments:
/// byte-identical serialized metrics.
#[test]
fn measure_link_wrapper_is_byte_identical_to_run_link() {
    let cfg = lossy_cfg();
    for seed in [3u64, 17, 90] {
        let spec = spec(seed);
        let new = run_link(&cfg, &spec, LinkRun::new()).unwrap();
        let old = measure_link(&cfg, &spec).unwrap();
        assert_eq!(
            serde_json::to_string(&new).unwrap(),
            serde_json::to_string(&old).unwrap(),
            "seed {seed}: deprecated measure_link diverged from run_link"
        );
    }
}

/// `measure_link_observed` (deprecated) must neither perturb the run nor
/// observe different outcomes than a `LinkRun::with_observe` attachment.
#[test]
fn observed_wrapper_is_byte_identical_and_sees_same_frames() {
    let cfg = lossy_cfg();
    let spec = spec(29);

    let mut new_frames = Vec::new();
    let mut observe = |i: u64, out: &FrameOutcome| {
        new_frames.push((i, out.fully_delivered(), out.sync_attempts));
    };
    let new = run_link(&cfg, &spec, LinkRun::new().with_observe(&mut observe)).unwrap();

    let mut old_frames = Vec::new();
    let old = fd_backscatter::sim::measure_link_observed(&cfg, &spec, |i, out| {
        old_frames.push((i, out.fully_delivered(), out.sync_attempts));
    })
    .unwrap();

    assert_eq!(new_frames, old_frames, "observers saw different frames");
    assert_eq!(
        serde_json::to_string(&new).unwrap(),
        serde_json::to_string(&old).unwrap(),
        "deprecated measure_link_observed diverged from run_link"
    );
}

/// `FdLink::run_frame_faulted` (deprecated) vs `run_frame_with` under the
/// same scripted fault schedule: identical outcomes frame by frame, from
/// identically-seeded links and RNG streams.
#[test]
fn faulted_frame_wrapper_matches_run_frame_with() {
    let plan: FaultPlan = serde_json::from_str(
        &std::fs::read_to_string(format!(
            "{}/configs/faults/burst_collision.json",
            env!("CARGO_MANIFEST_DIR")
        ))
        .unwrap(),
    )
    .unwrap();
    let payload: Vec<u8> = (0..48u8).collect();

    let run = |use_wrapper: bool| {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut link = FdLink::new(lossy_cfg(), &mut rng).unwrap();
        let mut lines = Vec::new();
        for frame in 0..4u64 {
            let mut faults = plan.frame_faults(frame);
            let out = if use_wrapper {
                link.run_frame_faulted(
                    &payload,
                    &RunOptions::fd_monitor(),
                    &mut rng,
                    faults.as_mut(),
                )
            } else {
                link.run_frame_with(
                    &payload,
                    &RunOptions::fd_monitor(),
                    &mut rng,
                    FrameRun::faulted(faults.as_mut()),
                )
            }
            .unwrap();
            lines.push(format!(
                "{frame}:{}:{}:{}:{}:{:?}",
                out.b_locked,
                out.fully_delivered(),
                out.blocks_ok(),
                out.sync_rejections,
                out.fault_activations,
            ));
        }
        lines
    };

    assert_eq!(
        run(false),
        run(true),
        "deprecated run_frame_faulted diverged from run_frame_with"
    );
}
