//! Conformance harness for the deterministic fault-injection layer: the
//! bundled scenario configs crossed with every fault class, plus the
//! directed invariants the matrix alone cannot express — frame isolation,
//! graceful degradation under a noise-power ladder, byte-identical
//! replay, golden-vector stability, and the trusting-policy ablation
//! that shows the two-stage sync verifier earning its keep under a
//! forged-preamble collision.

use fd_backscatter::prelude::*;
use fd_backscatter::sim::faults::{FaultKind, FaultPlan, FaultSpec, FaultTarget};
use fdb_bench::fault_matrix::{class_plans, run_cell, run_matrix};
use serde::Deserialize;

#[derive(Deserialize)]
struct Scenario {
    link: LinkConfig,
    spec: MeasureSpec,
}

/// The three shipped scenario configs, specs trimmed to a short batch so
/// the full grid stays fast.
fn bundled_scenarios(frames: u64) -> Vec<(String, LinkConfig, MeasureSpec)> {
    ["default_link", "marginal_link", "near_tower"]
        .iter()
        .map(|name| {
            let path = format!("{}/configs/{name}.json", env!("CARGO_MANIFEST_DIR"));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut sc: Scenario = serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("{name} invalid: {e}"));
            sc.spec.frames = frames;
            (name.to_string(), sc.link, sc.spec)
        })
        .collect()
}

/// A deterministic quiet link: CW carrier, negligible field noise. Every
/// clean frame delivers, which makes per-frame effects of a fault plan
/// directly attributable.
fn quiet_cfg() -> LinkConfig {
    let mut cfg = LinkConfig::default_fd();
    cfg.ambient = AmbientConfig::Cw;
    cfg.field_noise_dbm = -160.0;
    cfg
}

fn quiet_spec(frames: u64) -> MeasureSpec {
    MeasureSpec {
        frames,
        payload_len: 64,
        seed: 5,
        ..Default::default()
    }
}

/// Tentpole grid: every bundled config × every fault class, zero
/// violations, every scheduled class observed activating.
#[test]
fn matrix_over_bundled_configs_is_conformant() {
    let scenarios = bundled_scenarios(6);
    let plans: Vec<(String, FaultPlan)> = class_plans(17)
        .into_iter()
        .map(|(l, p)| (l.to_string(), p))
        .collect();
    let cells = run_matrix(&scenarios, &plans).expect("grid runs");
    assert_eq!(cells.len(), scenarios.len() * plans.len());
    for cell in &cells {
        assert!(
            cell.violations.is_empty(),
            "{} × {}: {:?}",
            cell.config,
            cell.plan,
            cell.violations
        );
        // Each single-class plan must have fired exactly its own counter.
        assert_eq!(
            cell.metrics.faults.total(),
            1,
            "{} × {}: activations {:?}",
            cell.config,
            cell.plan,
            cell.metrics.faults
        );
    }
}

/// The bundled multi-fault plans (the golden corpus) also sweep clean
/// against every bundled config.
#[test]
fn bundled_fault_plans_are_conformant_everywhere() {
    let scenarios = bundled_scenarios(6);
    let plans: Vec<(String, FaultPlan)> = ["burst_collision", "drift_ramp", "sic_step"]
        .iter()
        .map(|name| {
            let path =
                format!("{}/configs/faults/{name}.json", env!("CARGO_MANIFEST_DIR"));
            let text = std::fs::read_to_string(&path).unwrap();
            let plan: FaultPlan = serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("{name} invalid: {e}"));
            plan.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            (name.to_string(), plan)
        })
        .collect();
    for cell in run_matrix(&scenarios, &plans).expect("grid runs") {
        assert!(
            cell.violations.is_empty(),
            "{} × {}: {:?}",
            cell.config,
            cell.plan,
            cell.violations
        );
        assert_eq!(cell.metrics.faults.total(), 2, "{} × {}", cell.config, cell.plan);
    }
}

/// Golden-vector diff: the shipped fault plans against default_link must
/// reproduce results/golden/fault_*.json field-for-field. Regenerate with
/// tools/regen_fault_golden.py when a PHY change intentionally moves them.
#[test]
fn golden_fault_vectors_match() {
    for name in ["burst_collision", "drift_ramp", "sic_step"] {
        let root = env!("CARGO_MANIFEST_DIR");
        let text =
            std::fs::read_to_string(format!("{root}/configs/default_link.json")).unwrap();
        let sc: Scenario = serde_json::from_str(&text).unwrap();
        let plan: FaultPlan = serde_json::from_str(
            &std::fs::read_to_string(format!("{root}/configs/faults/{name}.json")).unwrap(),
        )
        .unwrap();
        let mut spec = sc.spec.with_faults(plan);
        spec.frames = 6;
        let metrics = run_link(&sc.link, &spec, LinkRun::new()).expect("golden scenario runs");
        let got: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&metrics).unwrap()).unwrap();
        let want: serde_json::Value = serde_json::from_str(
            &std::fs::read_to_string(format!("{root}/results/golden/fault_{name}.json"))
                .unwrap(),
        )
        .unwrap();
        assert_eq!(
            got, want,
            "{name}: faulted metrics drifted from golden vector \
             (tools/regen_fault_golden.py regenerates after intentional changes)"
        );
    }
}

/// Frame isolation: on a link with margin, a fault confined to frame k
/// may cost frames k and k+1, but every frame from k+2 on must deliver
/// exactly as the clean run does. The quiet config's clean baseline
/// delivers 100%, which the test asserts first so the isolation claim is
/// meaningful.
#[test]
fn fault_in_frame_k_never_degrades_frame_k_plus_2() {
    const FRAMES: u64 = 6;
    const K: u64 = 1;
    let cfg = quiet_cfg();
    let clean_spec = quiet_spec(FRAMES);

    let mut clean_delivered = Vec::new();
    let mut observe = |_: u64, out: &FrameOutcome| {
        clean_delivered.push(out.fully_delivered());
    };
    run_link(&cfg, &clean_spec, LinkRun::new().with_observe(&mut observe))
        .expect("clean run");
    assert!(
        clean_delivered.iter().all(|&d| d),
        "quiet baseline must deliver every frame: {clean_delivered:?}"
    );

    // One plan per class, all striking frame K, windows wide enough to
    // actually cost delivery on the quiet link.
    for (label, plan) in class_plans(23) {
        let mut plan = plan;
        for f in &mut plan.faults {
            f.frame = K;
        }
        let spec = clean_spec.clone().with_faults(plan);
        let mut delivered = Vec::new();
        let mut observe = |_: u64, out: &FrameOutcome| {
            delivered.push(out.fully_delivered());
        };
        run_link(&cfg, &spec, LinkRun::new().with_observe(&mut observe))
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        for (frame, (&faulted, &clean)) in
            delivered.iter().zip(&clean_delivered).enumerate()
        {
            let frame = frame as u64;
            if !(K..K + 2).contains(&frame) {
                assert_eq!(
                    faulted, clean,
                    "{label}: fault in frame {K} changed delivery of frame {frame}"
                );
            }
        }
    }
}

/// Graceful degradation: scaling a noise burst's power up (same seed, so
/// the underlying Gaussian draws are pointwise proportional) must never
/// *improve* the link. Two monotone claims along the power ladder:
///
/// * CRC-passing blocks over the fixed-length run never increase;
/// * among the points that decode the full run (no early abort), the
///   counted bit errors never decrease. Aborted points are excluded from
///   the BER claim because early abort truncates the error accounting —
///   corrupted tail blocks are never decoded, so their errors are
///   invisible, which would make raw BER spuriously non-monotone.
#[test]
fn noise_burst_power_ladder_degrades_monotonically() {
    let cfg = quiet_cfg();
    let mut points = Vec::new();
    for power_dbm in [-85.0, -58.0, -52.0, -46.0, -40.0] {
        let plan = FaultPlan {
            seed: 9,
            faults: vec![FaultSpec {
                frame: 1,
                start_sample: 800,
                duration_samples: 9_000,
                kind: FaultKind::NoiseBurst {
                    power_dbm,
                    target: FaultTarget::B,
                },
            }],
        };
        let spec = quiet_spec(3).with_faults(plan);
        let metrics = run_link(&cfg, &spec, LinkRun::new()).expect("ladder point runs");
        points.push((power_dbm, metrics));
    }

    let full_blocks = points[0].1.blocks_total;
    for pair in points.windows(2) {
        let (p0, m0) = &pair[0];
        let (p1, m1) = &pair[1];
        assert!(
            m1.blocks_ok <= m0.blocks_ok,
            "ladder not monotone: {p1} dBm passed {} blocks, weaker {p0} dBm passed {}",
            m1.blocks_ok,
            m0.blocks_ok
        );
        assert!(
            m1.fully_delivered <= m0.fully_delivered,
            "ladder not monotone in delivery: {p1} dBm vs {p0} dBm"
        );
        if m0.blocks_total == full_blocks && m1.blocks_total == full_blocks {
            assert!(
                m1.data_ber.errors() >= m0.data_ber.errors(),
                "ladder not monotone in BER: {p1} dBm gave {} errors, \
                 weaker {p0} dBm gave {}",
                m1.data_ber.errors(),
                m0.data_ber.errors()
            );
        }
    }
    let strongest = &points.last().unwrap().1;
    let weakest = &points[0].1;
    assert!(
        strongest.blocks_ok < weakest.blocks_ok,
        "strongest burst must actually cost blocks"
    );
}

/// Determinism: identical (config, spec, plan, seed) produces
/// byte-identical LinkMetrics JSON — the property the golden corpus and
/// CI matrix lean on.
#[test]
fn identical_inputs_give_byte_identical_metrics() {
    let scenarios = bundled_scenarios(4);
    let (_, cfg, spec) = &scenarios[0];
    let (_, plan) = class_plans(31).swap_remove(5); // interferer
    let spec = spec.clone().with_faults(plan);
    let a = run_link(cfg, &spec, LinkRun::new()).unwrap();
    let b = run_link(cfg, &spec, LinkRun::new()).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "replay must be byte-identical"
    );
}

/// An invalid plan is rejected up front with the offending entry named,
/// not silently skipped mid-run.
#[test]
fn invalid_plan_is_rejected_before_running() {
    let plan = FaultPlan {
        seed: 0,
        faults: vec![FaultSpec {
            frame: 0,
            start_sample: 0,
            duration_samples: 0, // invalid
            kind: FaultKind::Dropout {
                target: FaultTarget::B,
            },
        }],
    };
    let spec = quiet_spec(1).with_faults(plan);
    let err = run_link(&quiet_cfg(), &spec, LinkRun::new()).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("faults") || msg.contains("fault"),
        "error must point at the fault plan: {msg}"
    );
}

/// The ablation that motivates two-stage sync: a chip-rate interferer
/// burst covering the acquisition window forges data-like transitions
/// strong enough to swamp the one-shot preamble. Neither policy can
/// deliver that frame — the preamble is gone — but they fail in
/// categorically different ways, captured by the **lock-integrity
/// invariant**: on a link with margin, every frame the receiver claims
/// to lock must fully deliver. The default policy's preamble
/// verification rejects the forged peaks (no lock, rejections counted,
/// no garbage decode) and passes the invariant; the trusting policy
/// (verification off, re-arm budget zero) commits to a bogus lock and
/// fails it. Same channel, same plan, same seeds — only the sync policy
/// differs.
#[test]
fn trusting_policy_fails_lock_integrity_invariant_that_default_passes() {
    let collision = FaultPlan {
        seed: 41,
        faults: vec![FaultSpec {
            frame: 1,
            start_sample: 0,
            duration_samples: 640,
            kind: FaultKind::Interferer {
                power_dbm: -46.0,
                period_samples: 20,
            },
        }],
    };
    let spec = quiet_spec(3).with_faults(collision);

    let run = |policy: fd_backscatter::phy::config::SyncPolicy| {
        let mut cfg = quiet_cfg();
        cfg.phy.sync = policy;
        let mut per_frame = Vec::new();
        let mut observe = |_: u64, out: &FrameOutcome| {
            per_frame.push((out.b_locked, out.fully_delivered(), out.sync_rejections));
        };
        run_link(&cfg, &spec, LinkRun::new().with_observe(&mut observe))
            .expect("run");
        per_frame
    };

    let default_frames = run(Default::default());
    let trusting_frames = run(fd_backscatter::phy::config::SyncPolicy::trusting());

    // Both policies must keep the clean frames (0 and 2) — the fault is
    // confined to frame 1.
    for frames in [&default_frames, &trusting_frames] {
        assert!(frames[0].0 && frames[0].1, "clean frame 0 must deliver");
        assert!(frames[2].0 && frames[2].1, "clean frame 2 must deliver");
    }

    // Lock-integrity invariant: locked ⇒ delivered, on every frame.
    let lock_integrity =
        |frames: &[(bool, bool, usize)]| frames.iter().all(|&(locked, del, _)| !locked || del);

    let (d_locked, d_delivered, d_rejections) = default_frames[1];
    assert!(
        lock_integrity(&default_frames),
        "default policy violated lock integrity: {default_frames:?}"
    );
    assert!(
        !d_locked && !d_delivered,
        "default policy must refuse to lock on the forged preamble"
    );
    assert!(
        d_rejections > 0,
        "default policy should have rejected the forged peak at least once"
    );

    let (t_locked, t_delivered, _) = trusting_frames[1];
    assert!(t_locked, "trusting policy should commit to the forged lock");
    assert!(!t_delivered, "the forged lock cannot deliver the frame");
    assert!(
        !lock_integrity(&trusting_frames),
        "trusting policy unexpectedly satisfied lock integrity — \
         the ablation no longer demonstrates anything"
    );
}

/// run_cell's activation cross-check: a plan whose faults all land past
/// the end of the run is not a violation (nothing was scheduled in-run),
/// while the same plan inside the run must activate.
#[test]
fn activation_check_only_applies_to_in_run_faults() {
    let cfg = quiet_cfg();
    let spec = quiet_spec(2);
    let mut plan = class_plans(3).swap_remove(1).1; // dropout
    plan.faults[0].frame = 50; // far past the 2-frame run
    let cell = run_cell("quiet", &cfg, &spec, "late", &plan).unwrap();
    assert!(cell.violations.is_empty(), "{:?}", cell.violations);
    assert_eq!(cell.metrics.faults.total(), 0);
}

/// Sharded sweeps lean on [`LinkMetrics::merge`] to fold per-point
/// batches into one report; every additive counter — including the
/// per-class fault activation ledger — must sum exactly across shards.
#[test]
fn merged_shards_sum_every_counter_including_faults() {
    let scenarios = bundled_scenarios(4);
    let (_, cfg, spec) = &scenarios[0];
    // Two shards under different fault classes and different seeds, so
    // every counter (and a different activation class) moves in each.
    let (_, plan_a) = class_plans(41).swap_remove(0); // noise burst
    let (_, plan_b) = class_plans(43).swap_remove(1); // dropout
    let shard_a =
        run_link(cfg, &spec.clone().with_faults(plan_a), LinkRun::new()).unwrap();
    let mut spec_b = spec.clone();
    spec_b.seed ^= 0x5EED;
    let shard_b = run_link(cfg, &spec_b.with_faults(plan_b), LinkRun::new()).unwrap();
    assert_eq!(shard_a.faults.total(), 1, "shard A activations: {:?}", shard_a.faults);
    assert_eq!(shard_b.faults.total(), 1, "shard B activations: {:?}", shard_b.faults);

    let mut merged = shard_a.clone();
    merged.merge(&shard_b);
    assert_eq!(merged.frames, shard_a.frames + shard_b.frames);
    assert_eq!(merged.locked, shard_a.locked + shard_b.locked);
    assert_eq!(merged.decoded, shard_a.decoded + shard_b.decoded);
    assert_eq!(
        merged.fully_delivered,
        shard_a.fully_delivered + shard_b.fully_delivered
    );
    assert_eq!(merged.blocks_ok, shard_a.blocks_ok + shard_b.blocks_ok);
    assert_eq!(merged.blocks_total, shard_a.blocks_total + shard_b.blocks_total);
    assert_eq!(merged.pilots_ok, shard_a.pilots_ok + shard_b.pilots_ok);
    assert_eq!(
        merged.sync_attempts,
        shard_a.sync_attempts + shard_b.sync_attempts
    );
    assert_eq!(
        merged.sync_rejections,
        shard_a.sync_rejections + shard_b.sync_rejections
    );
    assert_eq!(
        merged.data_ber.bits(),
        shard_a.data_ber.bits() + shard_b.data_ber.bits()
    );
    assert_eq!(
        merged.data_ber.errors(),
        shard_a.data_ber.errors() + shard_b.data_ber.errors()
    );
    assert_eq!(
        merged.airtime_samples,
        shard_a.airtime_samples + shard_b.airtime_samples
    );
    assert_eq!(
        merged.elapsed_samples,
        shard_a.elapsed_samples + shard_b.elapsed_samples
    );
    // The fault ledger: per-class and in total.
    assert_eq!(
        merged.faults.noise_burst,
        shard_a.faults.noise_burst + shard_b.faults.noise_burst
    );
    assert_eq!(
        merged.faults.dropout,
        shard_a.faults.dropout + shard_b.faults.dropout
    );
    assert_eq!(merged.faults.total(), 2, "merged ledger: {:?}", merged.faults);
}
