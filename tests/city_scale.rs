//! City-scale tentpole gates: scale invariance, the golden city_64
//! trajectory, the 10k-tag wall-clock budget, and the event loop's
//! steady-state allocation bound.
//!
//! **Scale invariance** is the engine's core contract: every random
//! decision of tag `t` is keyed from `derive_seed(spec.seed, t)` and
//! idle tags are never materialised, so N active tags embedded among M
//! idle tags produce byte-identical per-active-tag ledgers for any M.
//! A dense shared-RNG simulator cannot satisfy this — the test pins the
//! architectural property, not a tuning outcome.
//!
//! The counting global allocator mirrors `tests/alloc_steady_state.rs`:
//! allocation requests on this thread are tallied, and a re-run of the
//! same spec on a reused [`CityEngine`] must perform **zero** of them.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use fdb_sim::city::{CityEngine, CityReport, CityScenarioSpec};

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: defers every operation to `System`; the bookkeeping is a
// thread-local `Cell` bump, which itself never allocates (const-init).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn repo_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// The checked-in dense-block scenario (the golden input).
fn city_64_spec() -> CityScenarioSpec {
    let text = std::fs::read_to_string(repo_path("configs/scenarios/city_64.json"))
        .expect("read configs/scenarios/city_64.json");
    serde_json::from_str(&text).expect("parse city_64 spec")
}

/// Appends one machine-readable result line to the file named by `env`
/// (`FDB_ALLOC_JSON` / `FDB_CITY_JSON`) for `tools/bench_check.py`.
/// No-op when unset; single `write_all` so parallel test threads don't
/// interleave (O_APPEND).
fn record_line(env: &str, line: String) {
    use std::io::Write;
    let Ok(path) = std::env::var(env) else {
        return;
    };
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .unwrap_or_else(|e| panic!("open {env} for append: {e}"));
    f.write_all(line.as_bytes())
        .unwrap_or_else(|e| panic!("append {env} line: {e}"));
}

#[test]
fn active_ledgers_are_invariant_to_idle_population() {
    let mut spec = city_64_spec();
    spec.log_frames = true; // compare per-attempt records too
    let mut baseline = CityEngine::run(&spec).expect("M=0 run");
    assert!(baseline.totals.offered > 0, "scenario generated no traffic");
    assert!(
        baseline.totals.collisions + baseline.totals.deferrals > 0,
        "scenario exercised no contention: {:?}",
        baseline.totals
    );
    let ledger_bytes = serde_json::to_string(&baseline.ledgers).expect("serialize ledgers");

    for m in [100u32, 10_000] {
        let mut crowded = spec.clone();
        crowded.n_idle = m;
        let mut report = CityEngine::run(&crowded).unwrap_or_else(|e| {
            panic!("M={m} run failed: {e}");
        });
        assert_eq!(
            serde_json::to_string(&report.ledgers).expect("serialize ledgers"),
            ledger_bytes,
            "per-active-tag ledgers changed with {m} idle tags"
        );
        // The whole trajectory — event schedule, queue high-water mark,
        // per-attempt records — must be untouched, not just the ledgers.
        assert_eq!(report.n_idle, m);
        report.n_idle = 0;
        baseline.n_idle = 0;
        assert_eq!(report, baseline, "report diverged with {m} idle tags");
    }
}

#[test]
fn golden_city_report_matches() {
    let spec = city_64_spec();
    let fresh = CityEngine::run(&spec).expect("city_64 run");
    let text = std::fs::read_to_string(repo_path("results/golden/city_small.json"))
        .expect("read results/golden/city_small.json");
    let golden: CityReport = serde_json::from_str(&text).expect("parse golden report");

    // Field-for-field, so an intentional shift points at what moved
    // (rerun tools/regen_city_golden.py and eyeball the diff).
    assert_eq!(fresh.label, golden.label, "label");
    assert_eq!(fresh.seed, golden.seed, "seed");
    assert_eq!(fresh.n_active, golden.n_active, "n_active");
    assert_eq!(fresh.n_idle, golden.n_idle, "n_idle");
    assert_eq!(fresh.horizon_ticks, golden.horizon_ticks, "horizon_ticks");
    assert_eq!(fresh.ticks_per_s, golden.ticks_per_s, "ticks_per_s");
    assert_eq!(
        fresh.events_processed, golden.events_processed,
        "events_processed"
    );
    assert_eq!(fresh.peak_queue, golden.peak_queue, "peak_queue");
    assert_eq!(fresh.totals, golden.totals, "totals");
    assert_eq!(
        fresh.ledgers.len(),
        golden.ledgers.len(),
        "ledger count"
    );
    for (f, g) in fresh.ledgers.iter().zip(&golden.ledgers) {
        assert_eq!(f, g, "ledger of tag {}", g.tag);
    }
    assert_eq!(fresh.frames, golden.frames, "frame records");
}

/// The tentpole's scale target: 10 000 tags over one simulated hour in
/// seconds of wall-clock. The event count is pinned exactly (it is
/// deterministic and machine-independent); the wall-clock bound holds
/// with a wide margin in release builds (~1 s on dev hardware vs the
/// 60 s CI budget), which is why this test is `#[ignore]`d from the
/// debug tier-1 sweep and run by the release city-scale CI job with
/// `--include-ignored`.
#[test]
#[ignore = "release-only perf gate; run with --release -- --include-ignored"]
fn ten_thousand_tags_one_sim_hour_within_budget() {
    let spec = CityScenarioSpec {
        label: "city-10k".into(),
        seed: 42,
        n_active: 10_000,
        sim_duration_s: 3600.0,
        mean_interarrival_s: 60.0,
        ..CityScenarioSpec::default()
    };
    let start = std::time::Instant::now();
    let report = CityEngine::run(&spec).expect("10k run");
    let wall = start.elapsed().as_secs_f64();
    assert!(report.totals.conserved(), "{:?}", report.totals);
    assert!(report.totals.delivered > 0, "{:?}", report.totals);
    assert!(
        wall < 60.0,
        "10k tags x 1 sim hour took {wall:.1} s (budget 60 s)"
    );
    record_line(
        "FDB_CITY_JSON",
        format!(
            "{{\"name\":\"city/10k_1h\",\"events_processed\":{},\"wall_s\":{:.6},\"events_per_s\":{:.1}}}\n",
            report.events_processed,
            wall,
            report.events_processed as f64 / wall.max(1e-9),
        ),
    );
}

#[test]
fn reused_engine_event_loop_allocates_nothing() {
    let spec = city_64_spec();
    let mut engine = CityEngine::new();
    let mut report = CityReport::default();
    // Warmup run grows every buffer (heap, tag table, ledgers, kernel).
    engine.run_into(&spec, &mut report).expect("warmup run");
    let warm = report.clone();
    let start = allocs_on_this_thread();
    engine.run_into(&spec, &mut report).expect("steady run");
    let steady_allocs = allocs_on_this_thread() - start;
    assert_eq!(report, warm, "steady run diverged from warmup");
    assert_eq!(
        steady_allocs, 0,
        "steady-state city event loop allocated {steady_allocs} times"
    );
    record_line(
        "FDB_ALLOC_JSON",
        format!(
            "{{\"name\":\"alloc/city_steady\",\"steady_allocs\":{steady_allocs},\"frames\":{}}}\n",
            report.events_processed
        ),
    );
}
