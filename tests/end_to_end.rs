//! Cross-crate end-to-end integration tests: the full stack, realistic
//! ambient source, both duplex modes, energy accounting.

use fd_backscatter::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn realistic_cfg(dist: f64) -> LinkConfig {
    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = dist;
    cfg
}

#[test]
fn strong_link_delivers_both_modes() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut link = FdLink::new(realistic_cfg(0.3), &mut rng).unwrap();
    let payload: Vec<u8> = (0..80u8).collect();
    for opts in [RunOptions::half_duplex(), RunOptions::fd_monitor()] {
        let out = link.run_frame(&payload, &opts, &mut rng).unwrap();
        assert!(out.fully_delivered(), "mode {opts:?} failed");
        assert_eq!(out.delivered.unwrap().payload, payload);
    }
}

#[test]
fn full_duplex_feedback_is_all_ack_on_clean_frames() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut link = FdLink::new(realistic_cfg(0.3), &mut rng).unwrap();
    let out = link
        .run_frame(&[0x42; 64], &RunOptions::fd_monitor(), &mut rng)
        .unwrap();
    assert!(out.pilots_verified);
    assert!(out.feedback.len() >= 3, "too few feedback bits");
    assert!(out.feedback.iter().all(|f| f.bit));
}

#[test]
fn abort_fires_well_before_frame_end_on_dead_link() {
    // At 1.5 m the link is far past its envelope: B cannot lock, so no
    // pilots appear, and with abort-on-nack A must cut the frame short...
    // except missing pilots produce *no* feedback at all — A completes the
    // frame. With a *corrupting* (but locking) link, A aborts early.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut link = FdLink::new(realistic_cfg(0.62), &mut rng).unwrap();
    let payload = vec![0x7Eu8; 192];
    let full_airtime: u64 = 34_800; // 192 B frame at the default PHY geometry
    let mut best_abort_airtime = u64::MAX;
    let mut saw_early_abort = false;
    for _ in 0..10 {
        let out = link
            .run_frame(&payload, &RunOptions::fd_early_abort(), &mut rng)
            .unwrap();
        if let Some(abort_at) = out.aborted_at_sample {
            // Every abort truncates the frame, and the session ends with it.
            assert!(
                (out.airtime_samples as u64) < full_airtime,
                "abort saved nothing"
            );
            assert!(abort_at < out.samples_run);
            assert!(
                out.samples_run as u64 <= out.airtime_samples as u64 + 40,
                "aborted session idled: run {} vs airtime {}",
                out.samples_run,
                out.airtime_samples
            );
            best_abort_airtime = best_abort_airtime.min(out.airtime_samples as u64);
            saw_early_abort = true;
        }
    }
    assert!(saw_early_abort, "no abort in 10 lossy frames");
    // At least one abort must fire early (a first-blocks failure).
    assert!(
        best_abort_airtime < full_airtime / 2,
        "earliest abort at {best_abort_airtime} samples"
    );
}

#[test]
fn energy_conservation_and_ledgers() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    // Close to the tower so harvesting is active.
    let mut cfg = realistic_cfg(0.3);
    cfg.geometry.source_dist_a_m = 100.0;
    cfg.geometry.source_dist_b_m = 100.0;
    let mut link = FdLink::new(cfg, &mut rng).unwrap();
    let out = link
        .run_frame(&[1u8; 32], &RunOptions::fd_monitor(), &mut rng)
        .unwrap();
    // Consumption scales with airtime and the configured loads.
    let dt = 1.0 / 20_000.0;
    let max_load = (0.2e-6 + 0.5e-6) * (out.samples_run as f64 * dt) + 1e-6;
    assert!(out.energy.a_consumed_j > 0.0 && out.energy.a_consumed_j < max_load);
    assert!(out.energy.b_consumed_j > 0.0 && out.energy.b_consumed_j < max_load);
    // At −7 dBm incident, B harvests micro-joules over half a second.
    assert!(
        out.energy.b_harvested_j > 1e-8,
        "harvested {:.3e} J",
        out.energy.b_harvested_j
    );
}

#[test]
fn run_link_aggregates_consistently() {
    let spec = MeasureSpec {
        frames: 4,
        payload_len: 48,
        seed: 5,
        feedback_probe: Some(false),
        trace: Default::default(),
        faults: None,
    };
    let m = run_link(&realistic_cfg(0.3), &spec, LinkRun::new()).unwrap();
    assert_eq!(m.frames, 4);
    assert_eq!(m.locked, 4);
    assert_eq!(m.fully_delivered, 4);
    assert_eq!(m.blocks_total, 4 * 3); // 48 bytes = 3 blocks
    assert_eq!(m.data_ber.errors(), 0);
    assert_eq!(m.data_ber.bits(), 4 * 48 * 8);
}

#[test]
fn stop_and_wait_and_early_abort_agree_on_clean_channel() {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let cfg = realistic_cfg(0.25);
    let mut sw = StopAndWait::new(cfg.clone(), ArqConfig::default(), &mut rng).unwrap();
    let mut ea = EarlyAbortArq::new(cfg, EarlyAbortConfig::default(), &mut rng).unwrap();
    let payload = vec![9u8; 64];
    let r1 = sw.transfer(&payload, &mut rng).unwrap();
    let r2 = ea.transfer(&payload, &mut rng).unwrap();
    assert!(r1.delivered && r2.delivered);
    assert_eq!(r1.frames_sent, 1);
    assert_eq!(r2.frames_sent, 1);
    // EA must be strictly cheaper in elapsed time: no ACK frame, no
    // second turnaround.
    assert!(r2.elapsed_samples < r1.elapsed_samples);
}
