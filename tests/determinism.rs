//! Reproducibility guarantees: identical configuration + seed must give
//! identical results — across reruns and across parallel sweep scheduling.

use fd_backscatter::prelude::*;
use fd_backscatter::sim::{parallel_sweep, runner::derive_seed};

fn point(dist_milli: u64) -> (u64, u64, u64) {
    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = dist_milli as f64 / 1000.0;
    let spec = MeasureSpec {
        frames: 3,
        payload_len: 48,
        seed: derive_seed(0xDE7E, dist_milli),
        feedback_probe: Some(false),
        trace: Default::default(),
        faults: None,
    };
    let m = run_link(&cfg, &spec, LinkRun::new()).unwrap();
    (m.data_ber.errors(), m.blocks_ok, m.airtime_samples)
}

#[test]
fn run_link_is_deterministic() {
    assert_eq!(point(550), point(550));
    assert_eq!(point(700), point(700));
}

#[test]
fn sweep_results_independent_of_thread_count() {
    let params: Vec<u64> = vec![400, 550, 650, 750];
    let serial = parallel_sweep(&params, 1, |&d| point(d));
    let parallel = parallel_sweep(&params, 4, |&d| point(d));
    assert_eq!(serial, parallel);
}

#[test]
fn distinct_seeds_distinct_outcomes_on_lossy_link() {
    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = 0.65;
    let run = |seed: u64| {
        let m = run_link(
            &cfg,
            &MeasureSpec {
                frames: 4,
                payload_len: 64,
                seed,
                feedback_probe: Some(false),
                trace: Default::default(),
                faults: None,
            },
            LinkRun::new(),
        )
        .unwrap();
        m.data_ber.errors()
    };
    // At least two of three seeds must differ (all-equal would suggest the
    // seed is being ignored).
    let outcomes = [run(1), run(2), run(3)];
    assert!(
        outcomes[0] != outcomes[1] || outcomes[1] != outcomes[2],
        "seed appears ignored: {outcomes:?}"
    );
}
