//! Property-based tests over the PHY's structural invariants.

use fd_backscatter::phy::config::PhyConfig;
use fd_backscatter::phy::frame::{encode_frame, FrameParser, ParseEvent};
use fd_backscatter::phy::rx::{DataReceiver, RxState};
use fd_backscatter::phy::tx::DataTransmitter;
use fd_backscatter::dsp::line_code::LineCode;
use proptest::prelude::*;

fn render_ideal(cfg: &PhyConfig, payload: &[u8], idle: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut tx = DataTransmitter::new(cfg, payload).unwrap();
    let mut wave = vec![lo; idle];
    while let Some(state) = tx.next_state() {
        wave.push(if state { hi } else { lo });
    }
    wave.extend(vec![lo; cfg.samples_per_bit() * 2]);
    wave
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any payload, any idle offset, any sane level pair: the ideal
    /// waveform decodes to exactly the transmitted payload.
    #[test]
    fn ideal_waveform_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 1..120),
        idle in 0usize..200,
        lo in 0.05f64..0.5,
        depth in 0.05f64..2.0,
    ) {
        let cfg = PhyConfig::default_fd();
        let wave = render_ideal(&cfg, &payload, idle, lo, lo + depth * lo);
        let mut rx = DataReceiver::new(cfg);
        for &v in &wave {
            rx.push_sample(v);
        }
        prop_assert_eq!(rx.state(), RxState::Done);
        let r = rx.take_result().unwrap();
        prop_assert_eq!(r.payload, payload);
        prop_assert!(r.blocks.iter().all(|b| b.ok));
    }

    /// Frame encoding round-trips at the bit level for every payload and
    /// block size.
    #[test]
    fn frame_bits_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 0..400),
        block_len in 1usize..64,
        scramble in any::<bool>(),
    ) {
        let mut cfg = PhyConfig::default_fd();
        cfg.block_len_bytes = block_len;
        cfg.scramble = scramble;
        let bits = encode_frame(&cfg, &payload).unwrap();
        let mut parser = FrameParser::new(cfg);
        let mut done = false;
        for b in bits {
            if let Some(ParseEvent::Done) = parser.push_bit(b) {
                done = true;
            }
        }
        prop_assert!(done, "frame never completed");
        prop_assert_eq!(parser.partial_payload(), &payload[..]);
        prop_assert!(parser.blocks().iter().all(|b| b.ok));
    }

    /// A single corrupted bit in the body flips exactly one block's CRC
    /// verdict and never corrupts neighbouring blocks' payload bytes.
    #[test]
    fn single_bit_error_is_localised(
        seed_byte in any::<u8>(),
        flip_block in 0usize..4,
        flip_bit in 0usize..(17 * 8),
    ) {
        let cfg = PhyConfig::default_fd(); // 16-byte blocks
        let payload: Vec<u8> = (0..64).map(|i| (i as u8).wrapping_add(seed_byte)).collect();
        let mut bits = encode_frame(&cfg, &payload).unwrap();
        let pos = fd_backscatter::phy::frame::HEADER_BITS + flip_block * 17 * 8 + flip_bit;
        bits[pos] = !bits[pos];
        let mut parser = FrameParser::new(cfg);
        let mut done = false;
        for b in bits {
            if let Some(ParseEvent::Done) = parser.push_bit(b) {
                done = true;
            }
        }
        prop_assert!(done, "frame never completed");
        let got = parser.partial_payload();
        for (i, status) in parser.blocks().iter().enumerate() {
            prop_assert_eq!(status.ok, i != flip_block, "block {} verdict", i);
            if i != flip_block {
                prop_assert_eq!(
                    &got[i * 16..(i + 1) * 16],
                    &payload[i * 16..(i + 1) * 16],
                    "neighbour block {} corrupted", i
                );
            }
        }
    }

    /// Line-code chip schedules always have the length the config promises
    /// and decode back to the frame bits.
    #[test]
    fn chip_schedule_geometry(
        payload in proptest::collection::vec(any::<u8>(), 0..60),
        code_idx in 0usize..4,
    ) {
        let codes = [LineCode::Manchester, LineCode::Fm0, LineCode::Miller, LineCode::Nrz];
        let mut cfg = PhyConfig::default_fd();
        cfg.line_code = codes[code_idx];
        let tx = DataTransmitter::new(&cfg, &payload).unwrap();
        let expected_bits = cfg.preamble.len()
            + fd_backscatter::phy::frame::frame_bits_len(&cfg, payload.len());
        prop_assert_eq!(tx.total_chips(), expected_bits * cfg.chips_per_bit());
        prop_assert_eq!(tx.total_samples(), tx.total_chips() * cfg.samples_per_chip);
    }
}
