//! Golden hash-stability vectors for the job content-address space.
//!
//! The result cache (`fdb-service`) keys entries by
//! [`JobSpec::content_hash`] — a hash of the job's **canonical JSON**,
//! which is a pure function of the value *and* the serde shape of every
//! type reachable from [`JobSpec`]. Renaming, reordering, or retyping any
//! such field silently changes every address, turning warm caches cold
//! (or, after a careless domain reuse, aliasing wrong results). These
//! vectors pin the addresses of the bundled configs so that any reshape
//! fails CI loudly; regenerate the constants below only alongside an
//! intentional [`JobSpec::HASH_DOMAIN`] bump.

use fd_backscatter::phy::link::LinkConfig;
use fd_backscatter::sim::faults::FaultPlan;
use fd_backscatter::sim::{JobSpec, MeasureSpec};
use serde::Deserialize;

#[derive(Deserialize)]
struct Scenario {
    link: LinkConfig,
    spec: MeasureSpec,
}

fn bundled_link_job(name: &str) -> JobSpec {
    let path = format!("{}/configs/{name}.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
    let sc: Scenario =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name} invalid: {e}"));
    JobSpec::Link {
        link: sc.link,
        spec: sc.spec,
    }
}

/// The exact jobs the service seeds its cache with from
/// `results/golden/fault_*.json`: default_link crossed with each bundled
/// fault plan, trimmed to the golden corpus' 6 frames.
fn golden_fault_job(plan_name: &str) -> JobSpec {
    let root = env!("CARGO_MANIFEST_DIR");
    let text = std::fs::read_to_string(format!("{root}/configs/default_link.json")).unwrap();
    let sc: Scenario = serde_json::from_str(&text).unwrap();
    let plan: FaultPlan = serde_json::from_str(
        &std::fs::read_to_string(format!("{root}/configs/faults/{plan_name}.json")).unwrap(),
    )
    .unwrap();
    let mut spec = sc.spec.with_faults(plan);
    spec.frames = 6;
    JobSpec::Link {
        link: sc.link,
        spec,
    }
}

/// Golden vectors: `(label, expected 32-hex content address)`. A failure
/// here means the canonical form of some job input type changed shape —
/// bump [`JobSpec::HASH_DOMAIN`] and regenerate rather than editing a
/// single line.
const GOLDEN: &[(&str, &str)] = &[
    ("config:default_link", "d59e88f49be7a86889704112dd4a8f34"),
    ("config:marginal_link", "42338c26563fb8c736f76797716d675b"),
    ("config:near_tower", "a9f2a7a369714bbba2779e0b969c394e"),
    ("golden:burst_collision", "1e1fc4b5576e65a602072922bdc7225a"),
    ("golden:drift_ramp", "acdcaeb494b8136a55dc37592b3feb06"),
    ("golden:sic_step", "896ec587aee4fb6e2d5e9a986a6c1aff"),
];

fn job_for(label: &str) -> JobSpec {
    match label.split_once(':').expect("label shape") {
        ("config", name) => bundled_link_job(name),
        ("golden", plan) => golden_fault_job(plan),
        other => panic!("unknown label {other:?}"),
    }
}

#[test]
fn bundled_job_addresses_are_stable() {
    let mut drifted = Vec::new();
    for (label, want) in GOLDEN {
        let got = job_for(label).content_hash().to_hex();
        if got != *want {
            drifted.push(format!("{label}: expected {want}, got {got}"));
        }
    }
    assert!(
        drifted.is_empty(),
        "job content addresses drifted — a serde reshape reached the hash \
         input; bump JobSpec::HASH_DOMAIN and regenerate:\n{}",
        drifted.join("\n")
    );
}

/// A job's address survives a JSON round trip of the spec itself — the
/// property that lets `probe submit --job FILE` and the in-process client
/// address the same cache entries.
#[test]
fn addresses_survive_spec_round_trip() {
    for (label, _) in GOLDEN {
        let job = job_for(label);
        let back: JobSpec =
            serde_json::from_str(&serde_json::to_string(&job).unwrap()).unwrap();
        assert_eq!(
            job.content_hash(),
            back.content_hash(),
            "{label}: round trip moved the address"
        );
    }
}

/// Adjacent-seed collision smoke: the 128-bit address must separate jobs
/// differing only in the measurement seed — the exact axis sweeps walk.
#[test]
fn adjacent_seeds_never_collide() {
    let base = bundled_link_job("default_link");
    let JobSpec::Link { link, spec } = base else {
        unreachable!()
    };
    let mut seen = std::collections::HashSet::new();
    for seed in 0..64u64 {
        let job = JobSpec::Link {
            link: link.clone(),
            spec: MeasureSpec {
                seed,
                ..spec.clone()
            },
        };
        assert!(
            seen.insert(job.content_hash()),
            "seed {seed} collided with an earlier seed's address"
        );
    }
}
