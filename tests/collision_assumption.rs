//! Validates the event-level MAC model's core assumption against the
//! sample-level K-device network: overlapping transmissions prevent the
//! receiver from locking (so the colliding FD transmitters see no pilots
//! and can abort), while a lone transmitter locks fine.

use fd_backscatter::ambient::AmbientConfig;
use fd_backscatter::device::TagConfig;
use fd_backscatter::phy::config::PhyConfig;
use fd_backscatter::phy::network::{BackscatterNetwork, NetworkConfig};
use fd_backscatter::phy::rx::{DataReceiver, RxState};
use fd_backscatter::phy::tx::DataTransmitter;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs device 0's frame towards receiver (device 2); device 1 interferes
/// from `interferer_offset` (usize::MAX = never).
fn receiver_locks(interferer_offset: usize, seed: u64) -> bool {
    let phy = PhyConfig::default_fd();
    let dt = phy.sample_period_s();
    let mut cfg = NetworkConfig::ring(3, 0.3, TagConfig::typical(dt));
    cfg.ambient = AmbientConfig::TvWideband { k_factor: 300.0 };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net = BackscatterNetwork::new(&cfg, dt).unwrap();

    let mut tx0 = DataTransmitter::new(&phy, &[0xAB; 16]).unwrap();
    let mut tx1 = DataTransmitter::new(&phy, &[0x55; 16]).unwrap();
    let mut rx = DataReceiver::new(phy);
    let total = tx0.total_samples() + 200;
    for t in 0..total {
        let s0 = tx0.next_state().unwrap_or(false);
        let s1 = t >= interferer_offset && tx1.next_state().unwrap_or(false);
        let envs = net.step(&[s0, s1, false], &mut rng);
        rx.push_sample(envs[2]);
    }
    // "Locked" now means a committed (verified) lock survived to the end of
    // the stream: `Failed` is the re-arm budget running out on rejected
    // candidates, which is the receiver correctly refusing the collision.
    rx.state() == RxState::Done || rx.state() == RxState::Receiving
}

#[test]
fn lone_transmitter_locks() {
    for seed in [1, 2, 3] {
        assert!(receiver_locks(usize::MAX, seed), "seed {seed}");
    }
}

#[test]
fn overlapping_transmitters_prevent_lock() {
    // Several unsynchronised overlap offsets; all must break acquisition.
    let mut broken = 0;
    let cases = [37usize, 137, 233];
    for (i, &offset) in cases.iter().enumerate() {
        if !receiver_locks(offset, 10 + i as u64) {
            broken += 1;
        }
    }
    assert!(
        broken >= 2,
        "collisions broke lock only {broken}/{} times",
        cases.len()
    );
}

#[test]
fn colliding_fd_transmitter_gets_no_pilots_and_aborts() {
    // End-to-end through FdLink: inject a strong contending reflector by
    // raising the residual reflection chaos — instead, simplest honest
    // check: a dead link (no lock) yields zero verified pilots, and the
    // early-abort transmitter still completes (documented behaviour: a
    // missing receiver looks like silence, handled by the MAC timeout).
    use fd_backscatter::prelude::*;
    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = 2.0; // past the cliff: B cannot lock
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let mut link = FdLink::new(cfg, &mut rng).unwrap();
    let out = link
        .run_frame(&[1u8; 32], &RunOptions::fd_early_abort(), &mut rng)
        .unwrap();
    assert!(!out.b_locked);
    assert!(!out.pilots_verified);
    // A's protocol-level belief must be "not delivered".
    assert!(!out.fully_delivered());
}
