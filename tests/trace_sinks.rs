//! Integration tests for the streaming trace-sink subsystem: the
//! acceptance bar is a 10,000-frame traced `parallel_sweep` whose resident
//! trace memory stays bounded by the per-frame ring capacity while the
//! merged JSONL file carries every frame in sweep order.
//!
//! Run with `cargo test --features trace`; the whole file compiles away
//! otherwise.
#![cfg(feature = "trace")]

use fd_backscatter::phy::trace::{parse_trace_line, TraceLine, TraceSinkSpec};
use fd_backscatter::prelude::*;
use fd_backscatter::sim::runner::derive_seed;
use fd_backscatter::sim::{parallel_sweep_traced, MeasureSpec};

/// The cheapest frame the PHY supports: CW carrier, near-noiseless field,
/// minimum samples per chip, one payload byte, half-duplex (no feedback
/// tail), tiny configured trace ring.
fn cheap_cfg() -> LinkConfig {
    let mut cfg = LinkConfig::default_fd();
    cfg.ambient = fd_backscatter::ambient::AmbientConfig::Cw;
    cfg.field_noise_dbm = -160.0;
    cfg.phy.samples_per_chip = 4;
    cfg.phy.trace_capacity = Some(64);
    cfg
}

#[test]
fn ten_thousand_frame_sweep_streams_all_frames_in_order_with_bounded_memory() {
    const POINTS: usize = 40;
    const FRAMES_PER_POINT: u64 = 250;
    let cfg = cheap_cfg();
    let frame_cap = cfg.phy.trace_ring_capacity();
    let out = std::env::temp_dir().join(format!(
        "fdb_trace_sinks_10k_{}.jsonl",
        std::process::id()
    ));

    let points: Vec<u64> = (0..POINTS as u64).collect();
    let results = parallel_sweep_traced(&points, 8, &out, frame_cap, |_, &p, sink| {
        let spec = MeasureSpec {
            frames: FRAMES_PER_POINT,
            payload_len: 1,
            seed: derive_seed(99, p),
            feedback_probe: None,
            trace: Default::default(),
            faults: None,
        };
        let metrics =
            run_link(&cfg, &spec, LinkRun::new().with_sink(sink)).expect("point measures");
        (metrics, sink.peak_staged_bytes())
    })
    .expect("traced sweep completes");

    assert_eq!(results.len(), POINTS);
    // Resident trace memory: each point's sink never staged more than one
    // ring-capacity frame (generous 300 bytes per event line + markers).
    let staged_bound = 300 * (frame_cap + 2);
    for (metrics, peak) in &results {
        assert_eq!(metrics.frames, FRAMES_PER_POINT);
        assert!(
            *peak <= staged_bound,
            "sink staged {peak} bytes; per-frame bound is {staged_bound}"
        );
        // The cap bit: real frames emit far more events than the tiny ring
        // admits, so the sink must be dropping (not buffering) the excess.
        assert!(metrics.trace_events <= FRAMES_PER_POINT * frame_cap as u64);
        assert!(metrics.trace_dropped > 0, "tiny cap never overflowed");
    }

    // The merged file: every point's frames present, in sweep order, with
    // frame indices restarting 0..FRAMES_PER_POINT per point, and events
    // inside every frame.
    let text = std::fs::read_to_string(&out).expect("merged trace exists");
    let (mut frames_seen, mut expected_frame, mut events_in_frame) = (0u64, 0u64, 0u64);
    for (i, line) in text.lines().enumerate() {
        match parse_trace_line(line)
            .unwrap_or_else(|e| panic!("{}:{}: {e}", out.display(), i + 1))
        {
            TraceLine::FrameStart { frame } => {
                assert_eq!(
                    frame,
                    expected_frame % FRAMES_PER_POINT,
                    "frame order broken at line {}",
                    i + 1
                );
                events_in_frame = 0;
            }
            TraceLine::Event(_) => events_in_frame += 1,
            TraceLine::FrameEnd { frame, events, .. } => {
                assert_eq!(frame, expected_frame % FRAMES_PER_POINT);
                assert_eq!(events, events_in_frame, "frame_end event count lies");
                assert!(events > 0, "frame {frame} recorded no events");
                expected_frame += 1;
                frames_seen += 1;
            }
        }
    }
    assert_eq!(
        frames_seen,
        POINTS as u64 * FRAMES_PER_POINT,
        "merged file must contain every frame of the sweep"
    );
    std::fs::remove_file(&out).ok();
}

#[test]
fn ring_spec_only_adds_trace_counters() {
    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = 0.8; // lossy: exercises the failure capture
    let spec = MeasureSpec {
        frames: 5,
        payload_len: 32,
        seed: 21,
        feedback_probe: Some(false),
        trace: Default::default(),
        faults: None,
    };
    let new_path = run_link(&cfg, &spec, LinkRun::new()).unwrap();

    // A live sink only adds the trace counters — every PHY-level metric
    // stays identical.
    let traced = run_link(
        &cfg,
        &spec.clone().with_trace(TraceSinkSpec::Ring { capacity: Some(32) }),
        LinkRun::new(),
    )
    .unwrap();
    assert!(traced.trace_events > 0);
    assert_eq!(traced.frames, new_path.frames);
    assert_eq!(traced.fully_delivered, new_path.fully_delivered);
    assert_eq!(traced.locked, new_path.locked);
    assert_eq!(traced.blocks_ok, new_path.blocks_ok);
    assert_eq!(traced.airtime_samples, new_path.airtime_samples);
    assert_eq!(traced.elapsed_samples, new_path.elapsed_samples);
    assert_eq!(traced.data_ber.errors(), new_path.data_ber.errors());
    assert_eq!(traced.sync_attempts, new_path.sync_attempts);
}

/// Negative path: a frame that both overflows the per-frame event cap
/// *and* crosses the rotation threshold at the same `end_frame`. The cap
/// must drop (not buffer) the excess, the frame_end marker must confess
/// the drop count, and the rotation must land the completed frame in a
/// rotated-out file while the next frame starts the fresh live file —
/// with no event lost or double-counted across the seam.
#[test]
fn event_cap_and_rotation_coincide_on_one_frame_boundary() {
    use fd_backscatter::phy::trace::{JsonlFileSink, TraceEvent, TraceSink};

    let path = std::env::temp_dir().join(format!(
        "fdb_trace_sinks_caprot_{}.jsonl",
        std::process::id()
    ));
    // rotate_bytes=1: every completed frame exceeds the limit, so every
    // frame boundary is also a rotation boundary.
    let mut sink = JsonlFileSink::create(&path)
        .unwrap()
        .with_frame_cap(4)
        .with_rotate_bytes(Some(1));

    let fault_event = |sample: usize| TraceEvent::Fault {
        sample,
        kind: "noise_burst".into(),
        active: sample.is_multiple_of(2),
    };

    // Frame 0: 10 events against a cap of 4 — 6 dropped at the cap, then
    // the flush of the surviving lines trips the rotation.
    sink.begin_frame(0);
    for i in 0..10 {
        sink.record(fault_event(i));
    }
    sink.end_frame();
    assert_eq!(sink.events_recorded(), 4, "cap must admit exactly 4 events");
    assert_eq!(sink.events_dropped(), 6, "cap must drop the excess");
    assert!(sink.io_error().is_none());

    // Frame 1 must land in the fresh post-rotation live file, untainted
    // by frame 0's drop accounting.
    sink.begin_frame(1);
    sink.record(fault_event(100));
    sink.end_frame();

    let summary = sink.finish().unwrap();
    assert_eq!(summary.frames, 2);
    assert_eq!(summary.events, 5);
    assert_eq!(summary.dropped, 6);
    // Both frames rotated out (rotate_bytes=1), live file left empty.
    assert_eq!(summary.files.len(), 3, "files: {:?}", summary.files);

    // The rotated files carry one frame each, markers intact.
    let expect = [(0u64, 4u64, 6u64), (1, 1, 0)];
    for ((frame_want, events_want, _), file) in expect.iter().zip(&summary.files) {
        let text = std::fs::read_to_string(file).unwrap();
        let mut events_seen = 0u64;
        let mut closed = false;
        for (i, line) in text.lines().enumerate() {
            match parse_trace_line(line).unwrap_or_else(|e| panic!("{file}:{}: {e}", i + 1)) {
                TraceLine::FrameStart { frame } => assert_eq!(frame, *frame_want),
                TraceLine::Event(_) => events_seen += 1,
                TraceLine::FrameEnd { frame, events, .. } => {
                    assert_eq!(frame, *frame_want);
                    assert_eq!(events, events_seen, "frame_end event count lies");
                    closed = true;
                }
            }
        }
        assert!(closed, "{file}: frame never closed");
        assert_eq!(events_seen, *events_want, "{file}");
    }
    let live = std::fs::read_to_string(&summary.files[2]).unwrap();
    assert!(live.is_empty(), "live file must be empty after final rotation");

    // The frame-0 marker must confess its drops verbatim in the JSON.
    let frame0 = std::fs::read_to_string(&summary.files[0]).unwrap();
    assert!(
        frame0.lines().last().unwrap().contains("\"dropped\":6"),
        "frame_end must record the drop count: {frame0}"
    );

    for file in &summary.files {
        std::fs::remove_file(file).ok();
    }
}

#[test]
fn jsonl_spec_through_run_link_round_trips_every_event() {
    let path = std::env::temp_dir().join(format!(
        "fdb_trace_sinks_rt_{}.jsonl",
        std::process::id()
    ));
    let mut cfg = cheap_cfg();
    cfg.phy.trace_capacity = None; // full frames: no drops expected
    let spec = MeasureSpec {
        frames: 3,
        payload_len: 8,
        seed: 4,
        feedback_probe: Some(false),
        trace: TraceSinkSpec::jsonl(path.display().to_string()),
        faults: None,
    };
    let metrics = run_link(&cfg, &spec, LinkRun::new()).unwrap();
    assert!(metrics.trace_events > 0);
    assert_eq!(metrics.trace_dropped, 0, "uncapped sink must not drop");

    let text = std::fs::read_to_string(&path).unwrap();
    let mut events = 0u64;
    for line in text.lines() {
        if let TraceLine::Event(_) = parse_trace_line(line).expect("valid line") {
            events += 1;
        }
    }
    assert_eq!(events, metrics.trace_events, "file events ≠ metric counter");
    std::fs::remove_file(&path).ok();
}
