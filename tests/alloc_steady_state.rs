//! The tentpole's zero-allocation contract, pinned with a counting
//! global allocator: after a one-frame warmup, steady-state frames on the
//! clean-link, faulted-link, and MAC-session paths perform **zero** heap
//! allocations — for both frame engines (per-sample reference and block),
//! with and without the `trace` feature (this file compiles under both
//! configs; CI runs it twice).
//!
//! The counter is thread-local, so parallel test threads can't perturb
//! each other's tallies. Only allocation *requests* are counted
//! (alloc/alloc_zeroed/realloc); frees are not — releasing capacity is
//! not a steady-state cost.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use fd_backscatter::channel::impairment::{FaultKind, FrameFaults, ScheduledFault};
use fd_backscatter::mac::scenario::{run_session, RatePolicy, SessionConfig};
use fd_backscatter::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: defers every operation to `System`; the bookkeeping is a
// thread-local `Cell` bump, which itself never allocates (const-init).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// Appends one machine-readable result line to the file named by
/// `FDB_ALLOC_JSON` (mirroring the bench harness's `FDB_BENCH_JSON`
/// stream) so `tools/bench_check.py` can fold steady-state allocation
/// counts into the committed trajectory file. No-op when unset. Runs
/// *after* the measured window, so its own allocations don't perturb
/// the count; the single `write_all` of one short line keeps parallel
/// test threads from interleaving (O_APPEND).
fn record_alloc(name: &str, allocs: u64, frames: u64) {
    use std::io::Write;
    let Ok(path) = std::env::var("FDB_ALLOC_JSON") else {
        return;
    };
    let line = format!(
        "{{\"name\":\"alloc/{name}\",\"steady_allocs\":{allocs},\"frames\":{frames}}}\n"
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open FDB_ALLOC_JSON for append");
    f.write_all(line.as_bytes())
        .expect("append FDB_ALLOC_JSON line");
}

/// Frames to run after warmup. The contract is "multi-thousand"; the
/// per-sample engine simulates every sample so keep the payload small.
const STEADY_FRAMES: u64 = 1000;

fn link_cfg() -> LinkConfig {
    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = 0.5;
    cfg
}

#[derive(Clone, Copy)]
enum Engine {
    /// `run_frame_into` — the production dispatch (block engine on
    /// non-trace builds, reference on trace builds).
    Dispatch,
    /// The per-sample reference pipeline, forced.
    Reference,
    /// The segmented block pipeline, forced.
    Block,
}

/// Runs `frames` frames over one link with fully reused buffers and
/// returns the allocations counted from the start of frame 1 (i.e.
/// excluding the warmup frame 0, which may grow every buffer).
fn steady_state_allocs(engine: Engine, frames: u64, faulted: bool) -> u64 {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut link = FdLink::new(link_cfg(), &mut rng).unwrap();
    let payload: Vec<u8> = (0..32u8).collect();
    let opts = RunOptions::fd_monitor();
    let mut out = FrameOutcome::default();
    let mut engine_faults = FrameFaults::new(Vec::new(), 0);
    let mut start = 0u64;
    for frame in 0..frames {
        if frame == 1 {
            start = allocs_on_this_thread();
        }
        let faults = if faulted {
            engine_faults.rearm(
                [ScheduledFault {
                    start: 4000,
                    duration: 600,
                    kind: FaultKind::Dropout {
                        target: Default::default(),
                    },
                }],
                0x5EED ^ frame,
            );
            Some(&mut engine_faults)
        } else {
            None
        };
        match engine {
            Engine::Dispatch => link
                .run_frame_into(&payload, &opts, &mut rng, FrameRun::faulted(faults), &mut out)
                .unwrap(),
            Engine::Reference => link
                .run_frame_reference_into(&payload, &opts, &mut rng, faults, &mut out)
                .unwrap(),
            Engine::Block => link
                .run_frame_block_into(&payload, &opts, &mut rng, faults, &mut out)
                .unwrap(),
        }
        // Consume the outcome the way the runner does, so the borrow
        // checker can't optimise the frame away and delivered results are
        // genuinely produced each frame.
        assert!(out.samples_run > 0);
    }
    allocs_on_this_thread() - start
}

#[test]
fn clean_link_reference_engine_is_allocation_free_after_warmup() {
    let n = steady_state_allocs(Engine::Reference, STEADY_FRAMES, false);
    record_alloc("clean_link_reference", n, STEADY_FRAMES - 1);
    assert_eq!(n, 0, "reference engine allocated {n} times in steady state");
}

#[test]
fn clean_link_block_engine_is_allocation_free_after_warmup() {
    let n = steady_state_allocs(Engine::Block, STEADY_FRAMES, false);
    record_alloc("clean_link_block", n, STEADY_FRAMES - 1);
    assert_eq!(n, 0, "block engine allocated {n} times in steady state");
}

#[test]
fn clean_link_dispatch_is_allocation_free_after_warmup() {
    // Covers the trace-on path too: on `trace` builds `run_frame_into`
    // routes through the reference engine and recycles the outcome's
    // trace ring in place.
    let n = steady_state_allocs(Engine::Dispatch, STEADY_FRAMES, false);
    record_alloc("clean_link_dispatch", n, STEADY_FRAMES - 1);
    assert_eq!(n, 0, "run_frame_into allocated {n} times in steady state");
}

#[test]
fn faulted_link_is_allocation_free_after_warmup() {
    for (engine, name) in [
        (Engine::Reference, "faulted_link_reference"),
        (Engine::Block, "faulted_link_block"),
    ] {
        let n = steady_state_allocs(engine, STEADY_FRAMES, true);
        record_alloc(name, n, STEADY_FRAMES - 1);
        assert_eq!(n, 0, "faulted frames allocated {n} times in steady state");
    }
}

#[test]
fn mac_session_is_allocation_free_after_warmup() {
    // `run_session` owns its per-slot reuse (lazy link + `reinit`, one
    // outcome, persistent options, pre-reserved records). The per-slot
    // fault closure runs at the top of every slot, so the allocation
    // count sampled there brackets whole steady-state slots: slot 0 is
    // the warmup (engines and report storage grow); slots 1..last must
    // not allocate.
    let session = SessionConfig {
        frames: 200,
        payload_len: 32,
        seed: 7,
        rate: RatePolicy::Fixed {
            samples_per_chip: link_cfg().phy.samples_per_chip,
        },
        early_abort: false,
        max_attempts: 2,
        retry_gap_samples: 400,
        flow: None,
        distance_ramp_m_per_slot: 0.0,
    };
    let start = Cell::new(0u64);
    let end = Cell::new(0u64);
    let report = run_session(&link_cfg(), &session, |slot, _| {
        if slot == 1 {
            start.set(allocs_on_this_thread());
        }
        if slot >= 1 {
            end.set(allocs_on_this_thread());
        }
        false
    })
    .unwrap();
    assert!(report.records.len() >= 200);
    assert!(start.get() > 0, "warmup slot never ran");
    let n = end.get() - start.get();
    record_alloc("mac_session", n, session.frames - 1);
    assert_eq!(n, 0, "MAC session allocated {n} times across steady-state slots");
}
