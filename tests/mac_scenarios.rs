//! Adaptive-MAC acceptance scenarios: the closed control loop beats its
//! oblivious ablation under the fault matrix.
//!
//! Each bundled `configs/scenarios/*.json` pair runs two sessions over
//! the same link and fault timeline through
//! [`fd_backscatter::mac::scenario::run_session`] — one with a MAC
//! mechanism enabled, one without — and the tests assert the adaptive
//! arm wins goodput by the pair's margin gate, that the mechanism
//! actually engaged (ladder switches / aborts / pauses), and that the
//! whole thing replays byte-identically. The drift-ramp pair's
//! adaptation trajectory is additionally pinned against
//! `results/golden/mac_drift_ramp.json`
//! (`tools/regen_mac_golden.py` regenerates it after intentional
//! changes).

use fd_backscatter::sim::{AblationPair, PairOutcome};

fn load_pair(name: &str) -> AblationPair {
    let path = format!(
        "{}/configs/scenarios/{name}.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name} invalid: {e}"))
}

fn run_pair(name: &str) -> PairOutcome {
    let out = load_pair(name).run().unwrap_or_else(|e| panic!("{name}: {e}"));
    assert!(
        out.pass,
        "{name}: adaptive/oblivious margin {:.3} below gate {:.3}",
        out.margin, out.min_margin
    );
    out
}

/// Headline 1 — rate adaptation: under a clock-drift ramp and a walk-away
/// distance ramp, the AIMD controller rides the rate ladder down from the
/// observable NACK fractions and keeps delivering, while the fixed-rate
/// arm dies early. The margin gate lives in the config (`min_margin`).
#[test]
fn drift_ramp_rate_adaptation_beats_fixed_rate() {
    let out = run_pair("drift_ramp");
    let traj = out.adaptive.ladder_trajectory();
    // The controller starts at the slowest rung, climbs while the link is
    // still short/clean, and is forced back to the bottom by the ramps.
    assert_eq!(traj.first(), Some(&3), "must start at the slowest rung");
    assert!(
        traj.iter().any(|&p| p < 3),
        "controller never climbed: {traj:?}"
    );
    assert_eq!(
        traj.last(),
        Some(&3),
        "ramp should force the controller back down: {traj:?}"
    );
    assert!(out.adaptive.rate_switches >= 4, "ladder barely moved");
    // The adaptive arm delivers most payloads; the fixed-fast arm loses
    // most of them as the ramps pass its operating point.
    assert!(out.adaptive.delivered_payloads >= 10);
    assert!(out.oblivious.delivered_payloads <= 4);
    // Decisions were observable-only: no false ACKs crept in.
    assert_eq!(out.adaptive.false_acks, 0);
}

/// Headline 2 — early abort: under noise-burst trains that corrupt frames
/// mid-flight, aborting on the first verified NACK and retrying beats
/// running every doomed frame to completion.
#[test]
fn burst_trains_early_abort_beats_run_to_completion() {
    let out = run_pair("burst_abort");
    assert!(
        out.adaptive.aborted_frames >= 5,
        "early abort never engaged ({} aborts)",
        out.adaptive.aborted_frames
    );
    assert_eq!(out.oblivious.aborted_frames, 0);
    // Both arms face the same bursts; the win is airtime, not delivery.
    assert!(out.adaptive.delivered_payloads >= out.oblivious.delivered_payloads);
    assert!(
        out.adaptive.elapsed_samples < out.oblivious.elapsed_samples,
        "abort arm should finish the session in less airtime"
    );
    // The scheduled bursts actually fired in both arms.
    assert!(out.adaptive.fault_activations.noise_burst > 0);
    assert!(out.oblivious.fault_activations.noise_burst > 0);
}

/// Headline 3 — flow control: when ambient fades starve B's harvester and
/// its drain stalls, the in-band busy signal (B streams NACK, A pauses)
/// beats the oblivious arm that overruns the buffer and pays end-of-pass
/// retransmissions.
#[test]
fn fade_epochs_backpressure_beats_overflow_retransmit() {
    let out = run_pair("fade_flow");
    assert!(
        out.adaptive.paused_slots > 0,
        "backpressure never engaged (no paused slots)"
    );
    assert_eq!(out.oblivious.paused_slots, 0);
    assert!(
        out.oblivious.blocks_dropped > out.adaptive.blocks_dropped,
        "oblivious arm should overflow more ({} vs {})",
        out.oblivious.blocks_dropped,
        out.adaptive.blocks_dropped
    );
    assert!(
        out.oblivious.retransmit_passes >= 1,
        "oblivious arm never paid a ledger pass"
    );
    assert!(out.adaptive.delivered_payloads > out.oblivious.delivered_payloads);
}

/// The whole pair run — per-slot records included — replays
/// byte-identically from the same config: per-slot seeds derive from the
/// session seed, never from link state or controller decisions.
#[test]
fn scenario_pairs_replay_byte_identically() {
    let a = load_pair("drift_ramp").run().unwrap();
    let b = load_pair("drift_ramp").run().unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "pair replay diverged"
    );
}

/// The drift-ramp adaptation trajectory is pinned byte-exactly against
/// the golden corpus: any change to the PHY, the controller, or the
/// session engine that moves a single rate decision shows up here.
#[test]
fn golden_adaptation_trajectory_matches() {
    use serde::Serialize;

    #[derive(Serialize)]
    struct Golden {
        scenario: String,
        label: String,
        ladder_trajectory: Vec<usize>,
        delivered_payloads: u64,
        failed_payloads: u64,
        attempts: u64,
        rate_switches: u64,
        elapsed_samples: u64,
    }

    let out = load_pair("drift_ramp").run().unwrap();
    let got = Golden {
        scenario: "configs/scenarios/drift_ramp.json".into(),
        label: out.label.clone(),
        ladder_trajectory: out.adaptive.ladder_trajectory(),
        delivered_payloads: out.adaptive.delivered_payloads,
        failed_payloads: out.adaptive.failed_payloads,
        attempts: out.adaptive.attempts,
        rate_switches: out.adaptive.rate_switches,
        elapsed_samples: out.adaptive.elapsed_samples,
    };
    let got: serde_json::Value =
        serde_json::from_str(&serde_json::to_string(&got).unwrap()).unwrap();
    let want: serde_json::Value = serde_json::from_str(
        &std::fs::read_to_string(format!(
            "{}/results/golden/mac_drift_ramp.json",
            env!("CARGO_MANIFEST_DIR")
        ))
        .unwrap(),
    )
    .unwrap();
    assert_eq!(
        got, want,
        "adaptation trajectory drifted from the golden vector \
         (tools/regen_mac_golden.py regenerates after intentional changes)"
    );
}

/// Every bundled pair config parses, validates, and carries a usable
/// margin gate — the contract the probe CLI and CI job rely on.
#[test]
fn bundled_scenario_configs_are_well_formed() {
    for name in ["drift_ramp", "burst_abort", "fade_flow"] {
        let pair = load_pair(name);
        assert!(!pair.label.is_empty(), "{name}: empty label");
        pair.link.phy.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        pair.adaptive.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        pair.oblivious.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            pair.min_margin.is_finite() && pair.min_margin > 1.0,
            "{name}: margin gate {} must demand a real win",
            pair.min_margin
        );
    }
}
