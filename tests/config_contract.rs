//! Configuration serde contract: the scenario CLI's JSON schema must stay
//! stable — every configuration type round-trips through JSON, and the
//! shipped example configs parse and validate.

use fd_backscatter::prelude::*;
use fd_backscatter::sim::MeasureSpec;

#[test]
fn link_config_json_round_trips() {
    let cfg = LinkConfig::default_fd();
    let json = serde_json::to_string_pretty(&cfg).expect("serialise");
    let back: LinkConfig = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(back.geometry.device_dist_m, cfg.geometry.device_dist_m);
    assert_eq!(back.phy.feedback_ratio, cfg.phy.feedback_ratio);
    assert_eq!(back.phy.line_code, cfg.phy.line_code);
    assert_eq!(back.tag_a.rho, cfg.tag_a.rho);
    assert!(back.phy.validate().is_ok());
}

#[test]
fn measure_spec_json_round_trips() {
    let spec = MeasureSpec {
        frames: 12,
        payload_len: 96,
        seed: 42,
        feedback_probe: Some(true),
        trace: Default::default(),
        faults: None,
    };
    let json = serde_json::to_string(&spec).unwrap();
    let back: MeasureSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back.frames, 12);
    assert_eq!(back.payload_len, 96);
    assert_eq!(back.feedback_probe, Some(true));
}

#[test]
fn shipped_example_configs_parse_and_run() {
    #[derive(serde::Deserialize)]
    struct Scenario {
        link: LinkConfig,
        spec: MeasureSpec,
    }
    for name in ["default_link.json", "marginal_link.json", "near_tower.json"] {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("configs")
            .join(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let scenario: Scenario =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name} invalid: {e}"));
        scenario
            .link
            .phy
            .validate()
            .unwrap_or_else(|e| panic!("{name} PHY invalid: {e}"));
        // Tiny run to prove the config is actually usable.
        let spec = MeasureSpec {
            frames: 1,
            ..scenario.spec
        };
        let m = run_link(&scenario.link, &spec, LinkRun::new())
            .unwrap_or_else(|e| panic!("{name} failed to run: {e}"));
        assert_eq!(m.frames, 1);
    }
}

#[test]
fn configs_without_sync_field_get_two_stage_defaults() {
    // Backward compatibility: PhyConfig JSON written before the `sync`
    // policy existed must deserialize to the verified two-stage default,
    // not a disabled one. The shipped example configs are exactly such
    // files — none of them carries a `sync` key.
    #[derive(serde::Deserialize)]
    struct Scenario {
        link: LinkConfig,
    }
    for name in ["default_link.json", "marginal_link.json", "near_tower.json"] {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("configs")
            .join(name);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            !text.contains("\"sync\""),
            "{name} now carries a sync key — this test needs a pre-sync fixture"
        );
        let scenario: Scenario = serde_json::from_str(&text).unwrap();
        let sync = scenario.link.phy.sync;
        assert_eq!(sync, fd_backscatter::phy::config::SyncPolicy::default(), "{name}");
        assert!(sync.verify_preamble, "{name}");
        assert!(sync.max_rearms > 0, "{name}");
    }
}

#[test]
fn configs_without_trace_fields_get_defaults() {
    // Backward compatibility: PhyConfig JSON written before `trace_capacity`
    // existed must resolve to the built-in ring capacity, and MeasureSpec
    // JSON without a `trace` key must select the null sink. The shipped
    // example configs are exactly such files.
    #[derive(serde::Deserialize)]
    struct Scenario {
        link: LinkConfig,
        spec: MeasureSpec,
    }
    for name in ["default_link.json", "marginal_link.json", "near_tower.json"] {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("configs")
            .join(name);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            !text.contains("\"trace") ,
            "{name} now carries a trace key — this test needs a pre-trace fixture"
        );
        let scenario: Scenario = serde_json::from_str(&text).unwrap();
        assert_eq!(scenario.link.phy.trace_capacity, None, "{name}");
        assert_eq!(
            scenario.link.phy.trace_ring_capacity(),
            fd_backscatter::phy::trace::DEFAULT_TRACE_CAPACITY,
            "{name}"
        );
        assert!(scenario.spec.trace.is_null(), "{name}");
    }
}

#[test]
fn trace_capacity_round_trips_and_validates() {
    let mut cfg = LinkConfig::default_fd();
    cfg.phy.trace_capacity = Some(512);
    let json = serde_json::to_string(&cfg).unwrap();
    let back: LinkConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.phy.trace_capacity, Some(512));
    assert_eq!(back.phy.trace_ring_capacity(), 512);
    assert!(back.phy.validate().is_ok());
    cfg.phy.trace_capacity = Some(0);
    assert!(cfg.phy.validate().is_err(), "zero ring capacity must be rejected");
}

#[test]
fn measure_spec_trace_sink_round_trips() {
    use fd_backscatter::prelude::TraceSinkSpec;
    let spec = MeasureSpec {
        frames: 3,
        payload_len: 16,
        seed: 9,
        feedback_probe: Some(false),
        trace: TraceSinkSpec::jsonl("/tmp/t.jsonl"),
        faults: None,
    };
    let json = serde_json::to_string(&spec).unwrap();
    let back: MeasureSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back.trace, spec.trace);
}

#[test]
fn configs_without_faults_field_get_clean_runs() {
    // Backward compatibility: MeasureSpec JSON written before the fault
    // layer existed must deserialize to a clean (fault-free) run. The
    // shipped example configs are exactly such files.
    #[derive(serde::Deserialize)]
    struct Scenario {
        spec: MeasureSpec,
    }
    for name in ["default_link.json", "marginal_link.json", "near_tower.json"] {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("configs")
            .join(name);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            !text.contains("\"faults\""),
            "{name} now carries a faults key — this test needs a pre-faults fixture"
        );
        let scenario: Scenario = serde_json::from_str(&text).unwrap();
        assert_eq!(scenario.spec.faults, None, "{name}");
    }
}

#[test]
fn fault_plan_optional_fields_round_trip() {
    use fd_backscatter::sim::faults::{FaultKind, FaultPlan, FaultTarget};

    // Terse form: seed, start_sample, and per-kind targets all omitted.
    let terse = r#"{"faults":[
        {"frame":2,"duration_samples":300,"kind":{"Dropout":{}}},
        {"frame":0,"duration_samples":50,
         "kind":{"NoiseBurst":{"power_dbm":-80.0}}}
    ]}"#;
    let plan: FaultPlan = serde_json::from_str(terse).expect("terse plan parses");
    assert_eq!(plan.seed, 0);
    assert_eq!(plan.faults[0].start_sample, 0);
    assert_eq!(
        plan.faults[0].kind,
        FaultKind::Dropout {
            target: FaultTarget::Both
        }
    );
    assert_eq!(
        plan.faults[1].kind,
        FaultKind::NoiseBurst {
            power_dbm: -80.0,
            target: FaultTarget::Both
        }
    );
    plan.validate().expect("terse plan valid");

    // Full round-trip: serialise, parse back, equal value.
    let json = serde_json::to_string(&plan).unwrap();
    let back: FaultPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(back, plan);

    // A spec with a plan attached round-trips too, and the empty plan is
    // distinct from no plan at all.
    let spec = MeasureSpec::quick(3).with_faults(plan.clone());
    let json = serde_json::to_string(&spec).unwrap();
    let back: MeasureSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back.faults, Some(plan));
    let empty = MeasureSpec::quick(3).with_faults(FaultPlan::empty());
    let back: MeasureSpec =
        serde_json::from_str(&serde_json::to_string(&empty).unwrap()).unwrap();
    assert_eq!(back.faults, Some(FaultPlan::empty()));
    assert!(back.faults.unwrap().is_empty());
}

#[test]
fn measure_spec_quick_matches_default_and_runs() {
    // MeasureSpec::quick(seed) is Default with the seed substituted —
    // the one-liner every test and experiment leans on.
    let quick = MeasureSpec::quick(42);
    let dflt = MeasureSpec::default();
    assert_eq!(quick.seed, 42);
    assert_eq!(quick.frames, dflt.frames);
    assert_eq!(quick.payload_len, dflt.payload_len);
    assert_eq!(quick.feedback_probe, dflt.feedback_probe);
    assert!(quick.trace.is_null());
    assert_eq!(quick.faults, None);

    let spec = MeasureSpec {
        frames: 2,
        payload_len: 16,
        ..MeasureSpec::quick(42)
    };
    let m = run_link(&LinkConfig::default_fd(), &spec, LinkRun::new()).expect("quick spec runs");
    assert_eq!(m.frames, 2);
    assert_eq!(m.faults.total(), 0, "clean run must report zero activations");
}

#[test]
fn rejected_configs_surface_errors() {
    let mut cfg = LinkConfig::default_fd();
    cfg.phy.feedback_ratio = 3; // odd: invalid
    let spec = MeasureSpec {
        frames: 1,
        payload_len: 8,
        seed: 1,
        feedback_probe: None,
        trace: Default::default(),
        faults: None,
    };
    assert!(run_link(&cfg, &spec, LinkRun::new()).is_err());
}
