//! Whole-harness smoke test: every experiment runs end-to-end in quick
//! mode and produces a non-empty table.
//!
//! Release-only: the suite exercises hundreds of PHY frames and would
//! dominate a debug `cargo test --workspace` for no extra coverage.

#![cfg(not(debug_assertions))]

use fdb_bench::experiments;
use fdb_bench::Effort;

#[test]
fn every_experiment_runs_quick() {
    // Redirect CSVs away from the working tree.
    std::env::set_var("FDB_RESULTS_DIR", std::env::temp_dir().join("fdb-smoke"));
    for id in experiments::all_ids() {
        let results = experiments::run(id, Effort::Quick)
            .unwrap_or_else(|| panic!("unknown experiment id {id}"));
        assert!(!results.is_empty(), "{id} produced nothing");
        for r in results {
            assert!(!r.table.is_empty(), "{id}/{} table empty", r.id);
            let md = r.table.to_markdown();
            assert!(md.lines().count() >= 3, "{id}/{} table too small", r.id);
            let csv = r.table.to_csv();
            assert!(csv.lines().count() == md.lines().count() - 1);
        }
    }
    std::env::remove_var("FDB_RESULTS_DIR");
}

#[test]
fn unknown_experiment_is_none() {
    assert!(experiments::run("e999", Effort::Quick).is_none());
}
