//! Property-based conformance of the fault-injection layer: arbitrary
//! bounded-energy fault plans against the shipped default_link scenario
//! must never panic, never blow the receiver's re-arm budget, and always
//! leave the metrics ledger consistent. This is the fuzzing arm of
//! `tests/fault_conformance.rs` — the directed grid covers the corners
//! we thought of; this covers the ones we didn't.

use fd_backscatter::prelude::*;
use fd_backscatter::sim::faults::{FaultKind, FaultPlan, FaultSpec, FaultTarget};
use fd_backscatter::sim::{check_frame_invariants, check_link_invariants};
use proptest::prelude::*;
use serde::Deserialize;

#[derive(Deserialize)]
struct Scenario {
    link: LinkConfig,
    spec: MeasureSpec,
}

const FRAMES: u64 = 4;
/// 16-byte payloads run ~3 880 samples per frame at the default rate, so
/// windows are drawn a little past the frame end to also exercise
/// truncation at the boundary.
const FRAME_SAMPLES: usize = 3_880;

fn default_scenario() -> (LinkConfig, MeasureSpec) {
    let path = format!("{}/configs/default_link.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).expect("default_link.json readable");
    let sc: Scenario = serde_json::from_str(&text).expect("default_link.json parses");
    let mut spec = sc.spec;
    spec.frames = FRAMES;
    spec.payload_len = 16;
    (sc.link, spec)
}

fn arb_target() -> impl Strategy<Value = FaultTarget> {
    prop_oneof![
        Just(FaultTarget::A),
        Just(FaultTarget::B),
        Just(FaultTarget::Both),
    ]
}

/// Every fault class with bounded energy: powers capped at -40 dBm
/// (strong enough to destroy frames, far below the validation ceiling),
/// drift within ±20 000 ppm, SIC error within ±20 dB.
fn arb_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        (-120.0f64..-40.0, arb_target())
            .prop_map(|(power_dbm, target)| FaultKind::NoiseBurst { power_dbm, target }),
        arb_target().prop_map(|target| FaultKind::Dropout { target }),
        (-20_000.0f64..20_000.0).prop_map(|ppm| FaultKind::ClockDrift { ppm }),
        (-20.0f64..20.0, arb_target())
            .prop_map(|(gain_db, target)| FaultKind::SicGain { gain_db, target }),
        (0.0f64..40.0).prop_map(|depth_db| FaultKind::AmbientFade { depth_db }),
        (-120.0f64..-40.0, 2usize..200).prop_map(|(power_dbm, period_samples)| {
            FaultKind::Interferer {
                power_dbm,
                period_samples,
            }
        }),
    ]
}

fn arb_spec() -> impl Strategy<Value = FaultSpec> {
    (
        0..FRAMES,
        0..FRAME_SAMPLES + 500,
        1..FRAME_SAMPLES + 500,
        arb_kind(),
    )
        .prop_map(|(frame, start_sample, duration_samples, kind)| FaultSpec {
            frame,
            start_sample,
            duration_samples,
            kind,
        })
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), proptest::collection::vec(arb_spec(), 0..4))
        .prop_map(|(seed, faults)| FaultPlan { seed, faults })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any bounded-energy plan: the run completes (no panic, no error),
    /// every frame respects the re-arm budget and the frame-level
    /// ledger, and the aggregate metrics stay consistent.
    #[test]
    fn arbitrary_plans_never_break_conformance(plan in arb_plan()) {
        let (cfg, spec) = default_scenario();
        prop_assert!(plan.validate().is_ok(), "generated plan must be valid");
        let scheduled = !plan.is_empty();
        let spec = spec.with_faults(plan);

        let mut frame_violations = Vec::new();
        let max_rearms = cfg.phy.sync.max_rearms;
        let mut max_rejections = 0usize;
        let mut observe = |frame: u64, out: &FrameOutcome| {
            if let Err(v) = check_frame_invariants(out, &cfg.phy) {
                frame_violations.push(format!("frame {frame}: {v}"));
            }
            max_rejections = max_rejections.max(out.sync_rejections);
        };
        let metrics = run_link(&cfg, &spec, LinkRun::new().with_observe(&mut observe))
            .expect("faulted run completes");

        prop_assert!(frame_violations.is_empty(), "{:?}", frame_violations);
        prop_assert!(
            max_rejections <= max_rearms + 1,
            "re-arm budget blown: {} rejections, budget {}",
            max_rejections,
            max_rearms
        );
        if let Err(v) = check_link_invariants(&metrics) {
            prop_assert!(false, "aggregate: {v}");
        }
        prop_assert_eq!(metrics.frames, FRAMES);
        if !scheduled {
            prop_assert_eq!(metrics.faults.total(), 0);
        }
    }

    /// Serde round-trip for arbitrary plans: JSON out, JSON in, equal
    /// value — the contract the bundled corpus and the CLI lean on.
    #[test]
    fn arbitrary_plans_round_trip_through_json(plan in arb_plan()) {
        let json = serde_json::to_string(&plan).expect("plan serialises");
        let back: FaultPlan = serde_json::from_str(&json).expect("plan parses back");
        prop_assert_eq!(plan, back);
    }
}
