//! Equivalence guards for the borrowing frame API (folded in from the
//! removed deprecated-API suite): the buffer-reusing entry points
//! ([`FdLink::run_frame_into`], [`FaultPlan::frame_faults_into`],
//! `LinkRun::with_observe`) must consume the same random streams and
//! produce byte-identical outcomes/metrics as their allocating
//! counterparts. A reused `FrameOutcome` carrying a previous frame's
//! state must never leak into the next frame's results.

use fd_backscatter::channel::impairment::FrameFaults;
use fd_backscatter::prelude::*;
use fd_backscatter::sim::faults::FaultPlan;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn lossy_cfg() -> LinkConfig {
    let mut cfg = LinkConfig::default_fd();
    cfg.geometry.device_dist_m = 0.7; // enough loss to make divergence visible
    cfg
}

fn outcome_line(frame: u64, out: &FrameOutcome) -> String {
    format!(
        "{frame}:{}:{}:{}:{}:{}:{}:{:?}:{:x}:{:x}",
        out.b_locked,
        out.fully_delivered(),
        out.blocks_ok(),
        out.sync_attempts,
        out.sync_rejections,
        out.samples_run,
        out.fault_activations,
        out.energy.a_consumed_j.to_bits(),
        out.energy.b_consumed_j.to_bits(),
    )
}

/// `run_frame_into` with one reused `FrameOutcome` and one re-armed
/// `FrameFaults` engine vs `run_frame_with` building everything fresh,
/// under the same scripted fault schedule: identical outcomes frame by
/// frame, from identically-seeded links and RNG streams.
#[test]
fn reused_outcome_and_fault_engine_match_fresh_per_frame_state() {
    let plan: FaultPlan = serde_json::from_str(
        &std::fs::read_to_string(format!(
            "{}/configs/faults/burst_collision.json",
            env!("CARGO_MANIFEST_DIR")
        ))
        .unwrap(),
    )
    .unwrap();
    let payload: Vec<u8> = (0..48u8).collect();

    let run = |reuse: bool| {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut link = FdLink::new(lossy_cfg(), &mut rng).unwrap();
        let mut lines = Vec::new();
        let mut out = FrameOutcome::default();
        let mut engine = FrameFaults::new(Vec::new(), 0);
        for frame in 0..4u64 {
            if reuse {
                let has_faults = plan.frame_faults_into(frame, &mut engine);
                link.run_frame_into(
                    &payload,
                    &RunOptions::fd_monitor(),
                    &mut rng,
                    FrameRun::faulted(has_faults.then_some(&mut engine)),
                    &mut out,
                )
                .unwrap();
                lines.push(outcome_line(frame, &out));
            } else {
                let mut faults = plan.frame_faults(frame);
                let fresh = link
                    .run_frame_with(
                        &payload,
                        &RunOptions::fd_monitor(),
                        &mut rng,
                        FrameRun::faulted(faults.as_mut()),
                    )
                    .unwrap();
                lines.push(outcome_line(frame, &fresh));
            }
        }
        lines
    };

    assert_eq!(
        run(false),
        run(true),
        "buffer-reusing frame path diverged from the allocating path"
    );
}

/// Attaching a per-frame observer must neither perturb the run's random
/// streams nor see different outcomes than the aggregation consumed:
/// byte-identical serialized metrics with and without the attachment.
#[test]
fn observer_attachment_is_byte_identical_to_plain_run() {
    let cfg = lossy_cfg();
    for seed in [3u64, 17, 29, 90] {
        let spec = MeasureSpec {
            frames: 5,
            payload_len: 48,
            seed,
            ..MeasureSpec::default()
        };
        let plain = run_link(&cfg, &spec, LinkRun::new()).unwrap();

        let mut frames_seen = Vec::new();
        let mut observe = |i: u64, out: &FrameOutcome| {
            frames_seen.push((i, out.fully_delivered(), out.sync_attempts));
        };
        let observed = run_link(&cfg, &spec, LinkRun::new().with_observe(&mut observe)).unwrap();

        assert_eq!(frames_seen.len(), 5, "observer missed frames");
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&observed).unwrap(),
            "seed {seed}: observer attachment perturbed the run"
        );
    }
}
